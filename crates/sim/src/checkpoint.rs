//! On-disk session checkpoints.
//!
//! A [`Checkpoint`] is everything a simulation session needs to continue
//! in another process: the [`ArchState`] at a retirement boundary, the
//! statistics accumulated so far (every raw counter, losslessly — the
//! figure-facing [`SimStats::to_json`] serialises derived metrics and is
//! not invertible), and the absolute cycle count. It serialises to a
//! single hand-rolled JSON document (schema `rix-ckpt/1`) that
//! `python3 -m json.tool` — and [`rix_isa::json`] — can read back.
//!
//! The contract (see [`Simulator::checkpoint`]): a session that
//! checkpoints and keeps running is byte-identical to one that saves the
//! checkpoint, reloads it elsewhere, and resumes.
//!
//! [`Simulator::checkpoint`]: crate::Simulator::checkpoint
//!
//! ```
//! use rix_sim::{Checkpoint, SimConfig, Simulator, StopWhen};
//! use rix_isa::{Asm, reg};
//!
//! let mut a = Asm::new();
//! a.addq_i(reg::R1, reg::ZERO, 500);
//! a.label("loop");
//! a.subq_i(reg::R1, reg::R1, 1);
//! a.bne(reg::R1, "loop");
//! a.halt();
//! let p = a.assemble()?;
//!
//! let mut live = Simulator::new(&p, SimConfig::default());
//! live.run_until(&StopWhen::RetiredAtLeast(200));
//! let ck = live.checkpoint();
//! // ... the live session keeps running; elsewhere, the round trip:
//! let restored = Checkpoint::from_json(&ck.to_json()).unwrap();
//! let mut resumed = Simulator::from_checkpoint(&p, SimConfig::default(), &restored);
//! let a = live.run_budget(1_000_000);
//! let b = resumed.run_budget(1_000_000);
//! assert_eq!(a.to_json(), b.to_json()); // byte-identical
//! # Ok::<(), rix_isa::AsmError>(())
//! ```

use crate::stats::SimStats;
use rix_integration::IntegrationStats;
use rix_isa::json::Json;
use rix_isa::{ArchState, Program};
use rix_mem::{CacheStats, Cycle, MemSystemStats};
use std::fmt::Write as _;
use std::path::Path;

/// A serialisable session snapshot at a retirement boundary. See the
/// [module docs](self).
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// The architectural state (PC, registers, memory, retired
    /// position).
    pub arch: ArchState,
    /// Every statistics counter accumulated since the last
    /// `reset_stats` (or construction), losslessly.
    pub stats: SimStats,
    /// The absolute machine cycle at capture.
    pub cycle: Cycle,
    /// [`fingerprint`] of the program the snapshot belongs to. An
    /// `ArchState` is meaningless against any other instruction stream,
    /// so `Simulator::from_checkpoint` refuses a mismatch instead of
    /// running garbage.
    pub program_hash: u64,
}

/// A 64-bit FNV-1a fingerprint of a program's identity: entry point,
/// instruction stream (dense encoding) and initial data image. Stored
/// in every [`Checkpoint`] and checked at restore, so a checkpoint
/// saved from one (benchmark, seed) cannot silently resume against
/// another.
#[must_use]
pub fn fingerprint(program: &Program) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |w: u64| {
        for b in w.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    mix(program.entry());
    mix(program.len() as u64);
    for &i in program.instrs() {
        // Assembled instructions always encode (the codec is lossless
        // over the ISA); fold a sentinel rather than fail on a
        // hand-built exotic one.
        mix(rix_isa::encode::encode(i).unwrap_or(u64::MAX));
    }
    for seg in program.data_segments() {
        mix(seg.base);
        mix(seg.words.len() as u64);
        for &w in &seg.words {
            mix(w);
        }
    }
    h
}

impl Checkpoint {
    /// Serialises the checkpoint as a `rix-ckpt/1` JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"schema":"rix-ckpt/1","cycle":{},"program_hash":{},"stats":{},"arch":{}}}"#,
            self.cycle,
            self.program_hash,
            stats_to_json(&self.stats),
            self.arch.to_json(),
        )
    }

    /// Parses a checkpoint serialised by [`Checkpoint::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text)?;
        match v.req("schema")?.as_str() {
            Some("rix-ckpt/1") => {}
            other => return Err(format!("unsupported checkpoint schema {other:?}")),
        }
        Ok(Self {
            cycle: v.req_u64("cycle")?,
            program_hash: v.req_u64("program_hash")?,
            stats: stats_from_json(v.req("stats")?)?,
            arch: ArchState::from_json_value(v.req("arch")?)?,
        })
    }

    /// Writes the checkpoint to `path`, with a trailing newline.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, format!("{}\n", self.to_json()))
    }

    /// Reads a checkpoint from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("cannot read checkpoint {:?}: {e}", path.as_ref()))?;
        Self::from_json(text.trim_end())
    }
}

// ----- lossless RunResult serialisation ---------------------------------

/// Serialises a [`RunResult`] losslessly (every raw counter, plus the
/// halt/timeout flags): the multi-process dispatch wire format and
/// trial-cache payload. The figure-facing [`RunResult::to_json`] emits
/// derived metrics and is **not** invertible; this pair is.
///
/// [`RunResult`]: crate::RunResult
/// [`RunResult::to_json`]: crate::RunResult::to_json
#[must_use]
pub fn result_to_json(r: &crate::RunResult) -> String {
    format!(
        r#"{{"halted":{},"timed_out":{},"stats":{}}}"#,
        r.halted,
        r.timed_out,
        stats_to_json(&r.stats),
    )
}

/// Parses a [`result_to_json`] document back into the identical
/// [`RunResult`] (`result_to_json(&result_from_json(v)?) ==` the
/// original text).
///
/// [`RunResult`]: crate::RunResult
pub fn result_from_json(v: &Json) -> Result<crate::RunResult, String> {
    let flag = |key: &str| -> Result<bool, String> {
        v.req(key)?.as_bool().ok_or_else(|| format!("key `{key}` must be a boolean"))
    };
    Ok(crate::RunResult {
        halted: flag("halted")?,
        timed_out: flag("timed_out")?,
        stats: stats_from_json(v.req("stats")?)?,
    })
}

// ----- lossless SimStats serialisation ----------------------------------

fn hist_json<const N: usize>(h: &[[u64; 2]; N]) -> String {
    let cells: Vec<String> = h.iter().map(|[d, r]| format!("[{d},{r}]")).collect();
    format!("[{}]", cells.join(","))
}

fn hist_from_json<const N: usize>(v: &Json, key: &str) -> Result<[[u64; 2]; N], String> {
    let arr = v
        .req(key)?
        .as_arr()
        .filter(|a| a.len() == N)
        .ok_or_else(|| format!("key `{key}` is not a {N}-entry histogram"))?;
    let mut out = [[0u64; 2]; N];
    for (i, cell) in arr.iter().enumerate() {
        let pair = cell.as_arr().filter(|p| p.len() == 2);
        let (d, r) = pair
            .and_then(|p| Some((p[0].as_u64()?, p[1].as_u64()?)))
            .ok_or_else(|| format!("`{key}`[{i}] is not a [direct, reverse] pair"))?;
        out[i] = [d, r];
    }
    Ok(out)
}

fn cache_json(c: CacheStats) -> String {
    format!(r#"{{"hits":{},"misses":{},"writebacks":{}}}"#, c.hits, c.misses, c.writebacks)
}

fn cache_from_json(v: &Json, key: &str) -> Result<CacheStats, String> {
    let c = v.req(key)?;
    Ok(CacheStats {
        hits: c.req_u64("hits")?,
        misses: c.req_u64("misses")?,
        writebacks: c.req_u64("writebacks")?,
    })
}

/// Serialises **every raw counter** of [`SimStats`] (unlike the
/// figure-facing [`SimStats::to_json`], which emits derived metrics and
/// drops some raw sums).
fn stats_to_json(s: &SimStats) -> String {
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        concat!(
            r#"{{"cycles":{},"retired":{},"fetched":{},"executed":{},"#,
            r#""loads_executed":{},"loads_retired":{},"stores_retired":{},"#,
            r#""cond_branches_retired":{},"branch_mispredicts":{},"#,
            r#""resolution_latency_sum":{},"squashes_branch":{},"#,
            r#""squashes_memorder":{},"squashes_diva":{},"rs_occupancy_sum":{},"#,
            r#""rob_occupancy_sum":{},"stalls_preg":{},"stalls_rob":{},"#,
            r#""stalls_rs":{},"stalls_lsq":{},"stalls_writebuf":{}"#
        ),
        s.cycles,
        s.retired,
        s.fetched,
        s.executed,
        s.loads_executed,
        s.loads_retired,
        s.stores_retired,
        s.cond_branches_retired,
        s.branch_mispredicts,
        s.resolution_latency_sum,
        s.squashes_branch,
        s.squashes_memorder,
        s.squashes_diva,
        s.rs_occupancy_sum,
        s.rob_occupancy_sum,
        s.stalls_preg,
        s.stalls_rob,
        s.stalls_rs,
        s.stalls_lsq,
        s.stalls_writebuf,
    );
    let i = &s.integration;
    let _ = write!(
        out,
        concat!(
            r#","integration":{{"direct":{},"reverse":{},"retired":{},"#,
            r#""mis_integrations":{},"load_mis_integrations":{},"#,
            r#""register_mis_integrations":{},"suppressed":{},"#,
            r#""by_type":{},"by_distance":{},"by_status":{},"by_refcount":{}}}"#
        ),
        i.direct,
        i.reverse,
        i.retired,
        i.mis_integrations,
        i.load_mis_integrations,
        i.register_mis_integrations,
        i.suppressed,
        hist_json(&i.by_type),
        hist_json(&i.by_distance),
        hist_json(&i.by_status),
        hist_json(&i.by_refcount),
    );
    let m = &s.mem;
    let _ = write!(
        out,
        concat!(
            r#","mem":{{"l1i":{},"l1d":{},"l2":{},"itlb_misses":{},"#,
            r#""dtlb_misses":{},"mshr_merges":{},"write_buffer_stalls":{},"#,
            r#""backside_busy":{},"membus_busy":{}}}}}"#
        ),
        cache_json(m.l1i),
        cache_json(m.l1d),
        cache_json(m.l2),
        m.itlb_misses,
        m.dtlb_misses,
        m.mshr_merges,
        m.write_buffer_stalls,
        m.backside_busy,
        m.membus_busy,
    );
    out
}

fn stats_from_json(v: &Json) -> Result<SimStats, String> {
    let iv = v.req("integration")?;
    let integration = IntegrationStats {
        direct: iv.req_u64("direct")?,
        reverse: iv.req_u64("reverse")?,
        retired: iv.req_u64("retired")?,
        mis_integrations: iv.req_u64("mis_integrations")?,
        load_mis_integrations: iv.req_u64("load_mis_integrations")?,
        register_mis_integrations: iv.req_u64("register_mis_integrations")?,
        suppressed: iv.req_u64("suppressed")?,
        by_type: hist_from_json(iv, "by_type")?,
        by_distance: hist_from_json(iv, "by_distance")?,
        by_status: hist_from_json(iv, "by_status")?,
        by_refcount: hist_from_json(iv, "by_refcount")?,
    };
    let mv = v.req("mem")?;
    let mem = MemSystemStats {
        l1i: cache_from_json(mv, "l1i")?,
        l1d: cache_from_json(mv, "l1d")?,
        l2: cache_from_json(mv, "l2")?,
        itlb_misses: mv.req_u64("itlb_misses")?,
        dtlb_misses: mv.req_u64("dtlb_misses")?,
        mshr_merges: mv.req_u64("mshr_merges")?,
        write_buffer_stalls: mv.req_u64("write_buffer_stalls")?,
        backside_busy: mv.req_u64("backside_busy")?,
        membus_busy: mv.req_u64("membus_busy")?,
    };
    Ok(SimStats {
        cycles: v.req_u64("cycles")?,
        retired: v.req_u64("retired")?,
        fetched: v.req_u64("fetched")?,
        executed: v.req_u64("executed")?,
        loads_executed: v.req_u64("loads_executed")?,
        loads_retired: v.req_u64("loads_retired")?,
        stores_retired: v.req_u64("stores_retired")?,
        cond_branches_retired: v.req_u64("cond_branches_retired")?,
        branch_mispredicts: v.req_u64("branch_mispredicts")?,
        resolution_latency_sum: v.req_u64("resolution_latency_sum")?,
        squashes_branch: v.req_u64("squashes_branch")?,
        squashes_memorder: v.req_u64("squashes_memorder")?,
        squashes_diva: v.req_u64("squashes_diva")?,
        rs_occupancy_sum: v.req_u64("rs_occupancy_sum")?,
        rob_occupancy_sum: v.req_u64("rob_occupancy_sum")?,
        stalls_preg: v.req_u64("stalls_preg")?,
        stalls_rob: v.req_u64("stalls_rob")?,
        stalls_rs: v.req_u64("stalls_rs")?,
        stalls_lsq: v.req_u64("stalls_lsq")?,
        stalls_writebuf: v.req_u64("stalls_writebuf")?,
        integration,
        mem,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::pipeline::Simulator;
    use crate::session::StopWhen;
    use rix_isa::{reg, Asm};

    fn busy_program() -> rix_isa::Program {
        let mut a = Asm::new();
        a.data(0x4000, (0..32).map(|i| i * 3).collect::<Vec<u64>>());
        a.addq_i(reg::R1, reg::ZERO, 200); // trips
        a.addq_i(reg::R2, reg::ZERO, 0x4000);
        a.label("loop");
        a.ldq(reg::R3, 0, reg::R2);
        a.addq_i(reg::R3, reg::R3, 1);
        a.stq(reg::R3, 0, reg::R2);
        a.lda(reg::SP, -16, reg::SP);
        a.stq(reg::R3, 8, reg::SP);
        a.ldq(reg::R4, 8, reg::SP);
        a.lda(reg::SP, 16, reg::SP);
        a.subq_i(reg::R1, reg::R1, 1);
        a.bne(reg::R1, "loop");
        a.halt();
        a.assemble().expect("assembles")
    }

    #[test]
    fn stats_serde_is_lossless() {
        let p = busy_program();
        let mut sim = Simulator::new(&p, SimConfig::default());
        sim.run_until(&StopWhen::RetiredAtLeast(600));
        let ck = sim.checkpoint();
        assert!(ck.stats.retired >= 600);
        assert!(ck.stats.integration.integrations() > 0, "exercise the histograms");
        let back = Checkpoint::from_json(&ck.to_json()).expect("parses");
        assert_eq!(back, ck);
        assert_eq!(back.to_json(), ck.to_json());
    }

    #[test]
    fn json_is_well_formed_and_self_describing() {
        let p = busy_program();
        let mut sim = Simulator::new(&p, SimConfig::baseline());
        sim.run_until(&StopWhen::RetiredAtLeast(100));
        let j = sim.checkpoint().to_json();
        assert!(j.contains(r#""schema":"rix-ckpt/1""#));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(rix_isa::json::Json::parse(&j).is_ok());
    }

    #[test]
    fn run_result_serde_is_lossless() {
        let p = busy_program();
        let mut sim = Simulator::new(&p, SimConfig::default());
        let r = sim.run_budget(2_000);
        let text = result_to_json(&r);
        let v = rix_isa::json::Json::parse(&text).expect("well-formed");
        let back = result_from_json(&v).expect("parses");
        assert_eq!(back, r);
        assert_eq!(result_to_json(&back), text, "byte-stable round trip");
        // And it is the *lossless* form, not the derived-metric one.
        assert!(text.contains("\"rs_occupancy_sum\""), "{text}");
    }

    #[test]
    fn from_json_rejects_other_schemas() {
        let err = Checkpoint::from_json(r#"{"schema":"rix-perf/1"}"#).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }
}
