//! The `sanity!` macro behind the simulator's invariant checks.
//!
//! `sanity!(cond, "name", args...)` is a named, message-bearing
//! `assert!`: compiled in under `debug_assertions` *or* the `sanitize`
//! feature, and folded away entirely in ordinary release builds (the
//! `cfg!` short-circuit means the condition is never even evaluated).
//! The name is a stable identifier for the violated invariant, so a
//! failure report names the broken machine property rather than a line
//! number: `sanity check failed [rob-ring-capacity]: ...`.
//!
//! Every check is read-only — enabling the `sanitize` feature changes
//! how hard the machine is audited, never what it computes, so
//! simulation results are byte-identical with and without it (the
//! golden-determinism suite runs under the feature to prove it).

/// Checks a named machine invariant in debug or `sanitize` builds.
macro_rules! sanity {
    ($cond:expr, $name:expr $(,)?) => {
        sanity!($cond, $name, "invariant violated");
    };
    ($cond:expr, $name:expr, $($arg:tt)+) => {
        if cfg!(any(debug_assertions, feature = "sanitize")) && !$cond {
            panic!("sanity check failed [{}]: {}", $name, format_args!($($arg)+));
        }
    };
}
