//! Stop conditions for resumable simulation sessions.
//!
//! [`Simulator::run_until`](crate::Simulator::run_until) advances the
//! machine until a [`StopWhen`] condition is satisfied and reports which
//! one fired as a [`StopReason`]. Conditions compose with
//! [`StopWhen::or`] and [`StopWhen::and`], so "warm up, then measure a
//! fixed interval with a safety net" is expressible without touching the
//! driver loop:
//!
//! ```
//! use rix_sim::StopWhen;
//!
//! let stop = StopWhen::RetiredAtLeast(100_000)
//!     .or(StopWhen::CyclesAtLeast(6_100_000));
//! assert!(stop.check(100_000, 0, false).is_some());
//! assert!(stop.check(0, 6_100_000, false).is_some());
//! assert!(stop.check(99_999, 6_099_999, false).is_none());
//! ```

/// A condition under which [`crate::Simulator::run_until`] stops.
///
/// Counters are measured **since the last
/// [`reset_stats`](crate::Simulator::reset_stats)** (or construction),
/// so the same condition works for cold runs and for post-warm-up
/// measurement intervals. Independent of any condition, `run_until`
/// always stops when the program halts or the machine deadlocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StopWhen {
    /// At least this many instructions have retired.
    RetiredAtLeast(u64),
    /// At least this many cycles have elapsed.
    CyclesAtLeast(u64),
    /// No instruction has retired for the deadlock window (a stuck
    /// machine). Useful inside [`StopWhen::All`]; on its own it is
    /// redundant because `run_until` always stops on deadlock.
    Deadlocked,
    /// Any sub-condition suffices (an empty list never stops).
    Any(Vec<StopWhen>),
    /// Every sub-condition must hold (an empty list never stops).
    All(Vec<StopWhen>),
}

impl StopWhen {
    /// The canonical instruction-budget condition used by
    /// [`crate::Simulator::run`] and the sweep layer: at least
    /// `target_retired` retirements, with a cycle safety net of
    /// `100_000 + 60·target_retired` against runaway runs.
    #[must_use]
    pub fn budget(target_retired: u64) -> StopWhen {
        let limit = 100_000u64.saturating_add(target_retired.saturating_mul(60));
        StopWhen::RetiredAtLeast(target_retired).or(StopWhen::CyclesAtLeast(limit))
    }

    /// Combines two conditions: stop when either holds.
    #[must_use]
    pub fn or(self, other: StopWhen) -> StopWhen {
        match self {
            StopWhen::Any(mut v) => {
                v.push(other);
                StopWhen::Any(v)
            }
            first => StopWhen::Any(vec![first, other]),
        }
    }

    /// Combines two conditions: stop only when both hold.
    #[must_use]
    pub fn and(self, other: StopWhen) -> StopWhen {
        match self {
            StopWhen::All(mut v) => {
                v.push(other);
                StopWhen::All(v)
            }
            first => StopWhen::All(vec![first, other]),
        }
    }

    /// Serialises the condition as JSON: `{"retired_at_least":N}`,
    /// `{"cycles_at_least":N}`, `"deadlocked"`, `{"any":[…]}`,
    /// `{"all":[…]}` — the `stop` clause of an experiment spec.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            Self::RetiredAtLeast(n) => format!(r#"{{"retired_at_least":{n}}}"#),
            Self::CyclesAtLeast(n) => format!(r#"{{"cycles_at_least":{n}}}"#),
            Self::Deadlocked => "\"deadlocked\"".to_string(),
            Self::Any(subs) => {
                let inner: Vec<String> = subs.iter().map(Self::to_json).collect();
                format!(r#"{{"any":[{}]}}"#, inner.join(","))
            }
            Self::All(subs) => {
                let inner: Vec<String> = subs.iter().map(Self::to_json).collect();
                format!(r#"{{"all":[{}]}}"#, inner.join(","))
            }
        }
    }

    /// Parses a condition serialised by [`StopWhen::to_json`].
    pub fn from_json_value(v: &rix_isa::json::Json) -> Result<Self, String> {
        use rix_isa::json::Json;
        match v {
            Json::Str(s) if s == "deadlocked" => Ok(Self::Deadlocked),
            Json::Str(other) => {
                Err(format!("unknown stop condition `{other}` (expected `deadlocked`)"))
            }
            Json::Obj(fields) => {
                let [(key, val)] = &fields[..] else {
                    return Err(
                        "a stop condition object must have exactly one key".to_string()
                    );
                };
                let num = || {
                    val.as_u64().ok_or_else(|| {
                        format!("stop condition `{key}` takes an unsigned integer")
                    })
                };
                let list = || -> Result<Vec<StopWhen>, String> {
                    val.as_arr()
                        .ok_or_else(|| format!("stop condition `{key}` takes an array"))?
                        .iter()
                        .map(Self::from_json_value)
                        .collect()
                };
                match key.as_str() {
                    "retired_at_least" => Ok(Self::RetiredAtLeast(num()?)),
                    "cycles_at_least" => Ok(Self::CyclesAtLeast(num()?)),
                    "any" => Ok(Self::Any(list()?)),
                    "all" => Ok(Self::All(list()?)),
                    other => Err(rix_isa::json::unknown_key(
                        other,
                        &["retired_at_least", "cycles_at_least", "any", "all"],
                    )),
                }
            }
            _ => Err("a stop condition must be an object or \"deadlocked\"".to_string()),
        }
    }

    /// Evaluates the condition against the current counters. Returns the
    /// [`StopReason`] of the (first, for [`StopWhen::Any`]; last, for
    /// [`StopWhen::All`]) satisfied leaf, or `None` when unsatisfied.
    #[must_use]
    pub fn check(&self, retired: u64, cycles: u64, deadlocked: bool) -> Option<StopReason> {
        match self {
            Self::RetiredAtLeast(n) => {
                (retired >= *n).then_some(StopReason::RetiredAtLeast(*n))
            }
            Self::CyclesAtLeast(n) => (cycles >= *n).then_some(StopReason::CyclesAtLeast(*n)),
            Self::Deadlocked => deadlocked.then_some(StopReason::Deadlocked),
            Self::Any(subs) => subs.iter().find_map(|s| s.check(retired, cycles, deadlocked)),
            Self::All(subs) => {
                let mut last = None;
                for s in subs {
                    last = Some(s.check(retired, cycles, deadlocked)?);
                }
                last
            }
        }
    }
}

/// Why [`crate::Simulator::run_until`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed a `halt` (always stops the session).
    Halted,
    /// A [`StopWhen::RetiredAtLeast`] threshold was reached.
    RetiredAtLeast(u64),
    /// A [`StopWhen::CyclesAtLeast`] threshold was reached.
    CyclesAtLeast(u64),
    /// No retirement for the deadlock window (always stops the session).
    Deadlocked,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves() {
        assert_eq!(
            StopWhen::RetiredAtLeast(10).check(10, 0, false),
            Some(StopReason::RetiredAtLeast(10))
        );
        assert_eq!(StopWhen::RetiredAtLeast(10).check(9, 0, false), None);
        assert_eq!(
            StopWhen::CyclesAtLeast(5).check(0, 7, false),
            Some(StopReason::CyclesAtLeast(5))
        );
        assert_eq!(StopWhen::Deadlocked.check(0, 0, true), Some(StopReason::Deadlocked));
        assert_eq!(StopWhen::Deadlocked.check(0, 0, false), None);
    }

    #[test]
    fn any_takes_first_satisfied() {
        let c = StopWhen::RetiredAtLeast(100).or(StopWhen::CyclesAtLeast(50));
        assert_eq!(c.check(0, 49, false), None);
        assert_eq!(c.check(0, 50, false), Some(StopReason::CyclesAtLeast(50)));
        assert_eq!(c.check(100, 50, false), Some(StopReason::RetiredAtLeast(100)));
    }

    #[test]
    fn all_requires_every_leaf() {
        let c = StopWhen::RetiredAtLeast(10).and(StopWhen::CyclesAtLeast(20));
        assert_eq!(c.check(10, 19, false), None);
        assert_eq!(c.check(9, 20, false), None);
        assert_eq!(c.check(10, 20, false), Some(StopReason::CyclesAtLeast(20)));
    }

    #[test]
    fn chaining_flattens() {
        let a = StopWhen::RetiredAtLeast(1)
            .or(StopWhen::CyclesAtLeast(2))
            .or(StopWhen::Deadlocked);
        assert_eq!(
            a,
            StopWhen::Any(vec![
                StopWhen::RetiredAtLeast(1),
                StopWhen::CyclesAtLeast(2),
                StopWhen::Deadlocked,
            ])
        );
    }

    #[test]
    fn json_round_trip() {
        let conds = [
            StopWhen::RetiredAtLeast(100_000),
            StopWhen::CyclesAtLeast(42),
            StopWhen::Deadlocked,
            StopWhen::budget(20_000),
            StopWhen::RetiredAtLeast(5).and(StopWhen::Deadlocked),
        ];
        for c in conds {
            let v = rix_isa::json::Json::parse(&c.to_json()).expect("well-formed");
            assert_eq!(StopWhen::from_json_value(&v).unwrap(), c, "{}", c.to_json());
        }
        let bad = rix_isa::json::Json::parse(r#"{"retired_atleast":5}"#).unwrap();
        let err = StopWhen::from_json_value(&bad).unwrap_err();
        assert!(err.contains("retired_atleast") && err.contains("retired_at_least"), "{err}");
    }

    #[test]
    fn empty_combinators_never_stop() {
        assert_eq!(StopWhen::Any(vec![]).check(u64::MAX, u64::MAX, true), None);
        assert_eq!(StopWhen::All(vec![]).check(u64::MAX, u64::MAX, true), None);
    }
}
