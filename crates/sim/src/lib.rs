//! # rix-sim: the out-of-order core
//!
//! A cycle-level, execute-driven simulator of the paper's machine (§3.1):
//! 4-way superscalar, 13-stage pipeline, 128-instruction window, 40
//! reservation stations with typed issue ports, speculative wrong-path
//! execution after branch mispredictions, speculative load issue with a
//! collision history table, a DIVA checker that functionally re-executes
//! every instruction in order just before retirement, and — the point of
//! it all — **register integration** in the rename stage, wired to the
//! machinery in [`rix_integration`].
//!
//! The public surface is small:
//!
//! * [`SimConfig`] / [`CoreConfig`] / [`IssueConfig`] — machine
//!   configuration with presets for every design point in the paper's
//!   evaluation,
//! * [`Simulator`] — a resumable session over a [`rix_isa::Program`]:
//!   [`Simulator::step`] advances one cycle, [`Simulator::run_until`]
//!   advances to a [`StopWhen`] condition and reports the
//!   [`StopReason`], [`Simulator::reset_stats`] zeroes the counters for
//!   warm-up-then-measure experiments, and [`Simulator::run`] is the
//!   one-shot convenience wrapper,
//! * [`RunResult`] / [`SimStats`] — everything Figures 4–7 need, plus a
//!   dependency-free [`RunResult::to_json`] for machine-readable output.
//!
//! The **`sanitize`** feature compiles the full per-cycle invariant
//! checker into any profile: every named `sanity!` check (ROB/seq
//! mirror coherence, scheduler-calendar liveness, store-queue age
//! order, reference-count conservation) runs every cycle instead of
//! debug builds' sampled subset. The checks are read-only, so results
//! are byte-identical with and without the feature — the
//! golden-determinism suite runs under it to prove exactly that.
//!
//! ```
//! use rix_sim::{SimConfig, Simulator, StopReason, StopWhen};
//! use rix_isa::{Asm, reg};
//!
//! // r3 = 5 * 4 computed by a loop; check both timing and architecture.
//! let mut a = Asm::new();
//! a.addq_i(reg::R1, reg::ZERO, 5);
//! a.addq_i(reg::R3, reg::ZERO, 0);
//! a.label("loop");
//! a.addq_i(reg::R3, reg::R3, 4);
//! a.subq_i(reg::R1, reg::R1, 1);
//! a.bne(reg::R1, "loop");
//! a.halt();
//! let p = a.assemble()?;
//!
//! // A resumable session: step a few cycles by hand, then run to halt.
//! let mut sim = Simulator::new(&p, SimConfig::baseline());
//! sim.step();
//! let reason = sim.run_until(&StopWhen::RetiredAtLeast(1_000));
//! assert_eq!(reason, StopReason::Halted); // halts before 1000 retire
//! let r = sim.result();
//! assert!(r.halted);
//! # Ok::<(), rix_isa::AsmError>(())
//! ```

#[macro_use]
mod invariant;

pub mod checkpoint;
pub mod config;
pub mod lsq;
pub mod pipeline;
pub mod session;
pub mod stats;

pub use checkpoint::Checkpoint;
pub use config::{CoreConfig, IssueConfig, SimConfig};
pub use lsq::{Cht, StoreQueue};
pub use pipeline::Simulator;
pub use session::{StopReason, StopWhen};
pub use stats::{RunResult, SimStats};
