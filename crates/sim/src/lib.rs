//! # rix-sim: the out-of-order core
//!
//! A cycle-level, execute-driven simulator of the paper's machine (§3.1):
//! 4-way superscalar, 13-stage pipeline, 128-instruction window, 40
//! reservation stations with typed issue ports, speculative wrong-path
//! execution after branch mispredictions, speculative load issue with a
//! collision history table, a DIVA checker that functionally re-executes
//! every instruction in order just before retirement, and — the point of
//! it all — **register integration** in the rename stage, wired to the
//! machinery in [`rix_integration`].
//!
//! The public surface is small:
//!
//! * [`SimConfig`] / [`CoreConfig`] / [`IssueConfig`] — machine
//!   configuration with presets for every design point in the paper's
//!   evaluation,
//! * [`Simulator`] — drives a [`rix_isa::Program`],
//! * [`RunResult`] / [`SimStats`] — everything Figures 4–7 need.
//!
//! ```
//! use rix_sim::{SimConfig, Simulator};
//! use rix_isa::{Asm, reg};
//!
//! // r3 = 5 * 4 computed by a loop; check both timing and architecture.
//! let mut a = Asm::new();
//! a.addq_i(reg::R1, reg::ZERO, 5);
//! a.addq_i(reg::R3, reg::ZERO, 0);
//! a.label("loop");
//! a.addq_i(reg::R3, reg::R3, 4);
//! a.subq_i(reg::R1, reg::R1, 1);
//! a.bne(reg::R1, "loop");
//! a.halt();
//! let p = a.assemble()?;
//! let sim = Simulator::new(&p, SimConfig::baseline());
//! let r = sim.run(1_000);
//! assert!(r.halted);
//! # Ok::<(), rix_isa::AsmError>(())
//! ```

pub mod config;
pub mod lsq;
pub mod pipeline;
pub mod stats;

pub use config::{CoreConfig, IssueConfig, SimConfig};
pub use lsq::{Cht, StoreQueue};
pub use pipeline::Simulator;
pub use stats::{RunResult, SimStats};
