//! End-to-end correctness tests for the out-of-order core.
//!
//! Every test runs a program on the pipeline and checks the retired
//! architectural state against the `rix_isa::interp` reference
//! interpreter — speculation, integration and mis-integration recovery
//! must all be architecturally invisible.

use rix_integration::IntegrationConfig;
use rix_isa::interp::{Interp, StopReason};
use rix_isa::{reg, Asm, Program};
use rix_sim::{SimConfig, Simulator};

const STACK_TOP: u64 = 0x0800_0000;

/// Runs `p` on the pipeline and the interpreter; asserts both halt and
/// that every integer register matches.
fn check_arch(p: &Program, cfg: SimConfig) -> rix_sim::RunResult {
    let mut interp = Interp::new(p, STACK_TOP);
    assert_eq!(interp.run(2_000_000), StopReason::Halted, "reference halts");
    let sim = Simulator::new(p, cfg);
    // Run to completion: generous budget.
    let result = sim.run(interp.steps() + 16);
    assert!(result.halted, "pipeline halts (retired {})", result.stats.retired);
    assert!(!result.timed_out);
    result
}

fn check_regs(p: &Program, cfg: SimConfig) -> rix_sim::RunResult {
    let mut interp = Interp::new(p, STACK_TOP);
    interp.run(2_000_000);
    let sim = Simulator::new(p, cfg);
    let mut sim = sim;
    // step-run so we can inspect the simulator afterwards
    let target = interp.steps() + 16;
    let limit = 100_000 + target * 60;
    while !sim.halted() && sim.stats().retired < target && sim.cycle() < limit {
        sim.step();
    }
    assert!(sim.halted(), "pipeline halts");
    for i in 0..32 {
        let r = rix_isa::LogReg::int(i);
        assert_eq!(
            sim.arch_reg(r),
            interp.reg(r),
            "register {r} diverged (config integration={})",
            cfg.integration.enabled
        );
    }
    rix_sim::RunResult { stats: sim.stats().clone(), halted: true, timed_out: false }
}

fn all_configs() -> Vec<(&'static str, SimConfig)> {
    let mut v = vec![("baseline", SimConfig::baseline())];
    for (name, ic) in IntegrationConfig::figure4_arms() {
        v.push((name, SimConfig::default().with_integration(ic)));
        v.push((
            Box::leak(format!("{name}+oracle").into_boxed_str()),
            SimConfig::default().with_integration(ic.with_oracle()),
        ));
    }
    v
}

fn loop_sum() -> Program {
    let mut a = Asm::new();
    a.addq_i(reg::R1, reg::ZERO, 100); // i
    a.addq_i(reg::R2, reg::ZERO, 0); // sum
    a.label("loop");
    a.addq(reg::R2, reg::R2, reg::R1);
    a.subq_i(reg::R1, reg::R1, 1);
    a.bne(reg::R1, "loop");
    a.halt();
    a.assemble().expect("fixture assembles")
}

#[test]
fn loop_sum_all_configs() {
    let p = loop_sum();
    for (name, cfg) in all_configs() {
        let r = check_regs(&p, cfg);
        assert!(r.halted, "{name}");
    }
}

fn call_tree() -> Program {
    // Nested calls with caller/callee saves — the reverse-integration
    // idiom of §2.4, repeated in a loop so entries get reused. NB: the
    // scratch register must not alias the loop counter (reg::T0 IS
    // reg::R1), so use a raw register index for it.
    let t = rix_isa::LogReg::int(7);
    let mut a = Asm::new();
    a.addq_i(reg::S0, reg::ZERO, 1000);
    a.addq_i(reg::R1, reg::ZERO, 30); // loop count
    a.label("loop");
    a.addq_i(t, reg::R1, 7);
    a.stq(t, 8, reg::SP); // caller save
    a.jsr("leaf");
    a.ldq(t, 8, reg::SP); // caller restore
    a.addq(reg::S0, reg::S0, t);
    a.subq_i(reg::R1, reg::R1, 1);
    a.bne(reg::R1, "loop");
    a.halt();
    a.label("leaf");
    a.lda(reg::SP, -32, reg::SP); // frame push
    a.stq(reg::S0, 16, reg::SP); // callee save
    a.addq_i(reg::S0, reg::ZERO, 5);
    a.mulq(reg::S0, reg::S0, reg::S0);
    a.ldq(reg::S0, 16, reg::SP); // callee restore
    a.lda(reg::SP, 32, reg::SP); // frame pop
    a.ret();
    a.assemble().expect("fixture assembles")
}

#[test]
fn call_tree_all_configs() {
    let p = call_tree();
    for (name, cfg) in all_configs() {
        let r = check_regs(&p, cfg);
        assert!(r.halted, "{name}");
    }
}

#[test]
fn reverse_integration_fires_on_save_restore() {
    let p = call_tree();
    let r = check_arch(&p, SimConfig::default());
    assert!(
        r.stats.integration.reverse > 0,
        "stack restores should reverse-integrate: {:?}",
        r.stats.integration
    );
}

#[test]
fn reverse_integration_absent_without_extension() {
    let p = call_tree();
    let cfg = SimConfig::default().with_integration(IntegrationConfig::plus_opcode());
    let r = check_arch(&p, cfg);
    assert_eq!(r.stats.integration.reverse, 0);
}

fn store_load_conflict() -> Program {
    // A loop whose load reuses a stale IT entry after the store changes
    // the value: classic load mis-integration fodder. The store writes a
    // different value each iteration to the same slot the load reads.
    let mut a = Asm::new();
    a.addq_i(reg::R1, reg::ZERO, 40); // iterations
    a.addq_i(reg::R2, reg::ZERO, 0x4000); // buffer base
    a.addq_i(reg::R4, reg::ZERO, 0); // checksum
    a.label("loop");
    a.stq(reg::R1, 0, reg::R2); // store i
    a.ldq(reg::R3, 0, reg::R2); // load it right back
    a.addq(reg::R4, reg::R4, reg::R3);
    a.subq_i(reg::R1, reg::R1, 1);
    a.bne(reg::R1, "loop");
    a.halt();
    a.assemble().expect("fixture assembles")
}

#[test]
fn conflicting_loads_stay_correct_all_configs() {
    let p = store_load_conflict();
    for (name, cfg) in all_configs() {
        let r = check_regs(&p, cfg);
        assert!(r.halted, "{name}");
    }
}

#[test]
fn mis_integrations_detected_and_recovered() {
    // With general reuse and a realistic LISP, the conflict loop should
    // provoke at least one load mis-integration — and still retire the
    // right architectural values (checked by check_regs inside).
    let p = store_load_conflict();
    let cfg = SimConfig::default().with_integration(IntegrationConfig::plus_opcode());
    let r = check_regs(&p, cfg);
    // Either the LISP suppressed everything after the first offence, or
    // DIVA caught at least one — both paths are valid; what matters is
    // that the run is architecturally clean, which check_regs asserted.
    let s = &r.stats.integration;
    assert!(
        s.mis_integrations > 0 || s.suppressed > 0 || s.integrations() == 0,
        "conflict loop should exercise suppression or recovery: {s:?}"
    );
}

#[test]
fn oracle_suppression_eliminates_mis_integrations() {
    let p = store_load_conflict();
    let cfg = SimConfig::default()
        .with_integration(IntegrationConfig::plus_reverse().with_oracle());
    let r = check_regs(&p, cfg);
    assert_eq!(
        r.stats.integration.mis_integrations, 0,
        "oracle suppression admits only verifiable integrations"
    );
}

fn unpredictable_branches() -> Program {
    // A data-dependent branch pattern (xorshift) that defeats the
    // predictor often enough to exercise squash and wrong-path fetch.
    let mut a = Asm::new();
    a.addq_i(reg::R1, reg::ZERO, 12345); // rng state
    a.addq_i(reg::R2, reg::ZERO, 200); // iterations
    a.addq_i(reg::R4, reg::ZERO, 0); // counter a
    a.addq_i(reg::R5, reg::ZERO, 0); // counter b
    a.label("loop");
    // xorshift step
    a.sll_i(reg::R3, reg::R1, 13);
    a.xor_(reg::R1, reg::R1, reg::R3);
    a.srl_i(reg::R3, reg::R1, 7);
    a.xor_(reg::R1, reg::R1, reg::R3);
    a.and_i(reg::R3, reg::R1, 1);
    a.beq(reg::R3, "even");
    a.addq_i(reg::R4, reg::R4, 3); // odd path
    a.br("join");
    a.label("even");
    a.addq_i(reg::R5, reg::R5, 5); // even path
    a.label("join");
    a.subq_i(reg::R2, reg::R2, 1);
    a.bne(reg::R2, "loop");
    a.halt();
    a.assemble().expect("fixture assembles")
}

#[test]
fn wrong_path_execution_all_configs() {
    let p = unpredictable_branches();
    for (name, cfg) in all_configs() {
        let r = check_regs(&p, cfg);
        assert!(r.stats.squashes_branch > 0, "{name}: branches must mispredict");
        assert!(
            r.stats.fetched > r.stats.retired,
            "{name}: wrong-path instructions were fetched"
        );
    }
}

#[test]
fn squash_reuse_occurs_on_reconvergent_hammocks() {
    // Squash reuse: instructions on the reconvergent join execute on the
    // wrong path, squash, then integrate their own squashed results.
    let p = unpredictable_branches();
    let cfg = SimConfig::default().with_integration(IntegrationConfig::squash_reuse());
    let r = check_regs(&p, cfg);
    assert!(
        r.stats.integration.integrations() > 0,
        "hammock join should squash-reuse: {:?}",
        r.stats.integration
    );
}

#[test]
fn general_reuse_beats_squash_reuse_on_invariants() {
    // An inner loop with un-hoisted loop-invariant computation: general
    // reuse integrates repeated instances; squash reuse cannot (no
    // mis-speculation needed to expose them).
    let mut a = Asm::new();
    a.addq_i(reg::R1, reg::ZERO, 64); // iterations
    a.addq_i(reg::R2, reg::ZERO, 17); // invariant input
    a.addq_i(reg::R6, reg::ZERO, 0); // sink
    a.label("loop");
    a.addq_i(reg::R3, reg::R2, 100); // loop-invariant, not hoisted
    a.xor_i(reg::R4, reg::R3, 0x3f); // loop-invariant chain
    a.addq(reg::R6, reg::R6, reg::R4);
    a.subq_i(reg::R1, reg::R1, 1);
    a.bne(reg::R1, "loop");
    a.halt();
    let p = a.assemble().unwrap();
    let squash = check_regs(&p, SimConfig::default().with_integration(IntegrationConfig::squash_reuse()));
    let general = check_regs(&p, SimConfig::default().with_integration(IntegrationConfig::plus_general()));
    assert!(
        general.stats.integration.integrations() > squash.stats.integration.integrations(),
        "general reuse ({}) must beat squash reuse ({})",
        general.stats.integration.integrations(),
        squash.stats.integration.integrations()
    );
    assert!(general.stats.integration.rate() > 0.05);
}

#[test]
fn memory_values_survive_the_pipeline() {
    // Write a pattern through the store queue / write buffer and verify
    // final architectural memory.
    let mut a = Asm::new();
    a.addq_i(reg::R1, reg::ZERO, 16);
    a.addq_i(reg::R2, reg::ZERO, 0x6000);
    a.label("loop");
    a.stq(reg::R1, 0, reg::R2);
    a.addq_i(reg::R2, reg::R2, 8);
    a.subq_i(reg::R1, reg::R1, 1);
    a.bne(reg::R1, "loop");
    a.halt();
    let p = a.assemble().unwrap();

    let mut interp = Interp::new(&p, STACK_TOP);
    interp.run(10_000);
    let mut sim = Simulator::new(&p, SimConfig::default());
    while !sim.halted() && sim.cycle() < 100_000 {
        sim.step();
    }
    assert!(sim.halted());
    for i in 0..16u64 {
        let addr = 0x6000 + i * 8;
        assert_eq!(sim.arch_mem_word(addr), interp.mem_word(addr), "word {i}");
    }
}

#[test]
fn integration_improves_ipc_on_reuse_heavy_code() {
    let p = call_tree();
    let base = check_arch(&p, SimConfig::baseline());
    let full = check_arch(&p, SimConfig::default());
    assert!(
        full.ipc() >= base.ipc(),
        "integration must not slow the machine: {} vs {}",
        full.ipc(),
        base.ipc()
    );
}

#[test]
fn reduced_complexity_configs_still_correct() {
    let p = unpredictable_branches();
    for core in [
        rix_sim::CoreConfig::rs20(),
        rix_sim::CoreConfig::iw3(),
        rix_sim::CoreConfig::iw3_rs20(),
    ] {
        let cfg = SimConfig::default().with_core(core);
        let r = check_regs(&p, cfg);
        assert!(r.halted);
        let b = SimConfig::baseline().with_core(core);
        let r = check_regs(&p, b);
        assert!(r.halted);
    }
}

#[test]
fn tiny_it_configs_correct() {
    let p = call_tree();
    for (entries, ways) in [(64, 1), (64, 64), (256, 4), (1024, 1024)] {
        let ic = IntegrationConfig::plus_reverse().with_it_geometry(entries, ways);
        let cfg = SimConfig::default().with_integration(ic);
        let r = check_regs(&p, cfg);
        assert!(r.halted, "IT {entries}x{ways}");
    }
}

#[test]
fn fp_ops_flow_through() {
    let mut a = Asm::new();
    a.addq_i(reg::R1, reg::ZERO, 0); // not used by fp
    // Build 2.0 and 3.0 as bit patterns via integer ops, then fp add.
    let two = 2.0f64.to_bits();
    // Materialise with shifts: load via data segment instead (simpler).
    a.data(0x3000, vec![two, 3.0f64.to_bits()]);
    a.addq_i(reg::R2, reg::ZERO, 0x3000);
    a.ldq(reg::F0, 0, reg::R2);
    a.ldq(reg::F1, 8, reg::R2);
    a.addt(reg::F2, reg::F0, reg::F1);
    a.mult(reg::F2, reg::F2, reg::F2);
    a.stq(reg::F2, 16, reg::R2);
    a.halt();
    let p = a.assemble().unwrap();
    let mut sim = Simulator::new(&p, SimConfig::default());
    while !sim.halted() && sim.cycle() < 100_000 {
        sim.step();
    }
    assert!(sim.halted());
    assert_eq!(f64::from_bits(sim.arch_mem_word(0x3010)), 25.0);
}

#[test]
fn deep_recursion_balances() {
    // Recursive sum 1..=20 with full save/restore — stresses RAS, call
    // depth tracking and reverse integration across recursion (§4 notes
    // the mechanism handles recursion correctly).
    let mut a = Asm::new();
    a.addq_i(reg::A0, reg::ZERO, 20);
    a.jsr("sum");
    a.halt();
    a.label("sum");
    a.lda(reg::SP, -16, reg::SP);
    a.stq(reg::RA, 0, reg::SP);
    a.stq(reg::A0, 8, reg::SP);
    a.bne(reg::A0, "recurse");
    a.addq_i(reg::V0, reg::ZERO, 0);
    a.br("out");
    a.label("recurse");
    a.subq_i(reg::A0, reg::A0, 1);
    a.jsr("sum");
    a.ldq(reg::A0, 8, reg::SP);
    a.addq(reg::V0, reg::V0, reg::A0);
    a.label("out");
    a.ldq(reg::RA, 0, reg::SP);
    a.lda(reg::SP, 16, reg::SP);
    a.ret();
    let p = a.assemble().unwrap();
    for (name, cfg) in all_configs() {
        let r = check_regs(&p, cfg);
        assert!(r.halted, "{name}");
    }
    // And the value is right (V0 = r0).
    let mut sim = Simulator::new(&p, SimConfig::default());
    while !sim.halted() && sim.cycle() < 200_000 {
        sim.step();
    }
    assert_eq!(sim.arch_reg(reg::V0), 210);
}
