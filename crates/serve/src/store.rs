//! The persistent run store: everything the service must not lose
//! across a restart, laid out under `--data-dir`:
//!
//! ```text
//! <data-dir>/runs/<id>.json      one rix-serve-run/1 record per run
//! <data-dir>/results/<id>.json   the exact rix-exp-result/1 bytes served
//! <data-dir>/cache/              the engine's content-addressed trial cache
//! ```
//!
//! Every write is atomic (same-directory temp file + rename, the
//! [`rix_dispatch`]-cache discipline), so a crash mid-write leaves the
//! previous state intact and a restarted server loads clean records.
//! Result documents are stored and re-read as raw bytes — the store
//! never parses or reformats them, which is what makes re-served
//! results byte-identical.

use crate::{Progress, RUN_SCHEMA};
use rix_isa::json::Json;
use std::path::{Path, PathBuf};

/// A run's lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunState {
    /// Accepted, waiting for an executor.
    Queued,
    /// An executor is simulating it.
    Running,
    /// Finished; its result document is stored and served.
    Done,
    /// The engine reported an error (recorded on the run).
    Failed,
}

impl RunState {
    /// The state's stable wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Done => "done",
            Self::Failed => "failed",
        }
    }

    fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "queued" => Ok(Self::Queued),
            "running" => Ok(Self::Running),
            "done" => Ok(Self::Done),
            "failed" => Ok(Self::Failed),
            other => Err(format!("unknown run state {other:?}")),
        }
    }
}

/// One run's durable record (everything but the result document, which
/// is stored separately as raw bytes).
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// The run id: the spec's `fingerprint128` as `0x…` hex — which is
    /// what makes identical submissions the *same* run.
    pub id: String,
    /// The spec's `name` field, for listings.
    pub name: Option<String>,
    /// The canonical spec JSON (compact), as validated.
    pub spec: String,
    /// Grid cells in the spec.
    pub cells: usize,
    /// Lifecycle state.
    pub state: RunState,
    /// The engine's error, for failed runs.
    pub error: Option<String>,
    /// Cell progress accounting (live while running; final afterwards).
    pub progress: Progress,
    /// The structured dispatch report (compact JSON), once finished.
    pub dispatch: Option<String>,
}

impl RunRecord {
    fn to_json(&self) -> Result<String, String> {
        let mut fields: Vec<(String, Json)> = vec![
            ("schema".into(), Json::Str(RUN_SCHEMA.into())),
            ("id".into(), Json::Str(self.id.clone())),
            (
                "name".into(),
                self.name.as_ref().map_or(Json::Null, |n| Json::Str(n.clone())),
            ),
            ("cells".into(), Json::Num(self.cells.to_string())),
            ("state".into(), Json::Str(self.state.name().into())),
            ("spec".into(), Json::parse(&self.spec)?),
            ("progress".into(), progress_json(self.progress)),
        ];
        if let Some(e) = &self.error {
            fields.push(("error".into(), Json::Str(e.clone())));
        }
        if let Some(d) = &self.dispatch {
            fields.push(("dispatch".into(), Json::parse(d)?));
        }
        Ok(Json::Obj(fields).dump())
    }

    fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text)?;
        match v.get("schema").and_then(Json::as_str) {
            Some(RUN_SCHEMA) => {}
            other => return Err(format!("unsupported run record schema {other:?}")),
        }
        let state_name = v
            .req("state")?
            .as_str()
            .ok_or_else(|| "run `state` must be a string".to_string())?;
        Ok(Self {
            id: v
                .req("id")?
                .as_str()
                .ok_or_else(|| "run `id` must be a string".to_string())?
                .to_string(),
            name: v.get("name").and_then(Json::as_str).map(str::to_string),
            spec: v.req("spec")?.dump(),
            cells: usize::try_from(v.req_u64("cells")?)
                .map_err(|_| "run `cells` overflows usize".to_string())?,
            state: RunState::from_name(state_name)?,
            error: v.get("error").and_then(Json::as_str).map(str::to_string),
            progress: v.get("progress").map_or_else(Progress::default, progress_from_json),
            dispatch: v.get("dispatch").map(Json::dump),
        })
    }
}

/// The progress counters as a JSON object (shared by run records and
/// the status endpoint).
#[must_use]
pub fn progress_json(p: Progress) -> Json {
    Json::Obj(vec![
        ("total".into(), Json::Num(p.total.to_string())),
        ("done".into(), Json::Num(p.done.to_string())),
        ("cached".into(), Json::Num(p.cached.to_string())),
        ("degraded".into(), Json::Num(p.degraded.to_string())),
    ])
}

fn progress_from_json(v: &Json) -> Progress {
    let count = |name: &str| {
        v.get(name).and_then(Json::as_u64).and_then(|n| usize::try_from(n).ok()).unwrap_or(0)
    };
    Progress {
        total: count("total"),
        done: count("done"),
        cached: count("cached"),
        degraded: count("degraded"),
    }
}

/// The on-disk store rooted at a data directory.
pub struct RunStore {
    runs: PathBuf,
    results: PathBuf,
    cache: PathBuf,
}

impl RunStore {
    /// Opens (creating as needed) the store under `dir` and sweeps any
    /// temp files a crashed writer left behind.
    pub fn open(dir: &str) -> Result<Self, String> {
        let root = PathBuf::from(dir);
        let store = Self {
            runs: root.join("runs"),
            results: root.join("results"),
            cache: root.join("cache"),
        };
        for d in [&store.runs, &store.results, &store.cache] {
            std::fs::create_dir_all(d)
                .map_err(|e| format!("cannot create {}: {e}", d.display()))?;
        }
        for d in [&store.runs, &store.results] {
            sweep_temp_files(d);
        }
        Ok(store)
    }

    /// The trial-cache directory for the engine to use.
    #[must_use]
    pub fn cache_dir(&self) -> String {
        self.cache.display().to_string()
    }

    /// Persists one run record atomically.
    pub fn save_run(&self, run: &RunRecord) -> Result<(), String> {
        let body = run.to_json()?;
        write_atomic(&self.runs.join(format!("{}.json", run.id)), &body)
    }

    /// Loads every run record, sorted by id. Unparseable records are
    /// skipped with a warning rather than wedging startup.
    pub fn load_runs(&self) -> Result<Vec<RunRecord>, String> {
        let entries = std::fs::read_dir(&self.runs)
            .map_err(|e| format!("cannot list {}: {e}", self.runs.display()))?;
        let mut runs = Vec::new();
        for entry in entries {
            let path = entry.map_err(|e| format!("listing run records: {e}"))?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with('.') || !name.ends_with(".json") {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(&path) else { continue };
            match RunRecord::from_json(&text) {
                Ok(run) => runs.push(run),
                Err(e) => eprintln!("serve-api: skipping corrupt {}: {e}", path.display()),
            }
        }
        runs.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(runs)
    }

    /// Stores a result document's bytes verbatim (atomic).
    pub fn save_result(&self, id: &str, doc: &str) -> Result<(), String> {
        write_atomic(&self.results.join(format!("{id}.json")), doc)
    }

    /// The stored result bytes, exactly as saved.
    #[must_use]
    pub fn load_result(&self, id: &str) -> Option<String> {
        std::fs::read_to_string(self.results.join(format!("{id}.json"))).ok()
    }

    /// Whether a completed result document exists for `id`.
    #[must_use]
    pub fn has_result(&self, id: &str) -> bool {
        self.results.join(format!("{id}.json")).is_file()
    }
}

fn sweep_temp_files(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        if name.to_str().is_some_and(|n| n.starts_with('.') && n.ends_with(".tmp")) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

fn write_atomic(path: &Path, body: &str) -> Result<(), String> {
    let dir = path.parent().ok_or("store path has no parent directory")?;
    let name = path.file_name().and_then(|n| n.to_str()).ok_or("store path has no name")?;
    let tmp = dir.join(format!(".{name}.{}.tmp", std::process::id()));
    std::fs::write(&tmp, body).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("cannot commit {}: {e}", path.display())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("rix-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_str().unwrap().to_string()
    }

    #[test]
    fn run_records_round_trip() {
        let dir = scratch("roundtrip");
        let store = RunStore::open(&dir).unwrap();
        let run = RunRecord {
            id: "0x0000000000000000000000000000002a".into(),
            name: Some("fig4".into()),
            spec: r#"{"benchmarks":"all"}"#.into(),
            cells: 9,
            state: RunState::Running,
            error: None,
            progress: Progress { total: 9, done: 4, cached: 1, degraded: 0 },
            dispatch: None,
        };
        store.save_run(&run).unwrap();
        let failed = RunRecord {
            id: "0x0000000000000000000000000000001b".into(),
            name: None,
            spec: "{}".into(),
            cells: 1,
            state: RunState::Failed,
            error: Some("boom".into()),
            progress: Progress::default(),
            dispatch: Some(r#"{"cells":1}"#.into()),
        };
        store.save_run(&failed).unwrap();

        let loaded = store.load_runs().unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].id, failed.id, "sorted by id");
        assert_eq!(loaded[0].error.as_deref(), Some("boom"));
        assert_eq!(loaded[0].dispatch.as_deref(), Some(r#"{"cells":1}"#));
        assert_eq!(loaded[1].state, RunState::Running);
        assert_eq!(loaded[1].progress, run.progress);
        assert_eq!(loaded[1].spec, run.spec);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn results_are_stored_verbatim_and_corrupt_runs_are_skipped() {
        let dir = scratch("verbatim");
        let store = RunStore::open(&dir).unwrap();
        let doc = "{\n  \"schema\":\"rix-exp-result/1\",\n  \"trials\":[]\n}\n";
        store.save_result("0xabc", doc).unwrap();
        assert!(store.has_result("0xabc"));
        assert_eq!(store.load_result("0xabc").as_deref(), Some(doc));
        assert!(store.load_result("0xdef").is_none());

        std::fs::write(std::path::Path::new(&dir).join("runs/bad.json"), "not json").unwrap();
        assert!(store.load_runs().unwrap().is_empty(), "corrupt record skipped");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
