//! A minimal HTTP/1.1 subset — exactly what the experiment API needs
//! and nothing more: one request per connection (`Connection: close`),
//! `Content-Length` bodies, no chunked encoding, no keep-alive, no TLS.
//! Hand-rolled over `std::net` so the service stays registry-free.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Bodies above this size are rejected before buffering (an experiment
/// spec is a few KiB; anything near this bound is not a spec).
pub const MAX_BODY: usize = 4 * 1024 * 1024;
const MAX_HEADERS: usize = 64;

/// One parsed request. Header names are lowercased at parse time, so
/// lookups are case-insensitive the way HTTP requires.
#[derive(Clone, Debug, Default)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the peer per HTTP).
    pub method: String,
    /// The request target, e.g. `/v1/runs/0xabc…/result`.
    pub path: String,
    /// `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty without a `Content-Length`).
    pub body: String,
}

impl Request {
    /// The first value of `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Reads one request from `stream` (with a read deadline, so a stalled
/// peer cannot pin a connection thread forever).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("reading request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_string(), p.to_string())
        }
        _ => return Err(format!("malformed request line {:?}", line.trim_end())),
    };
    let mut req = Request { method, path, ..Request::default() };
    loop {
        line.clear();
        reader.read_line(&mut line).map_err(|e| format!("reading headers: {e}"))?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if req.headers.len() >= MAX_HEADERS {
            return Err("too many request headers".to_string());
        }
        let (name, value) =
            trimmed.split_once(':').ok_or_else(|| format!("malformed header {trimmed:?}"))?;
        req.headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    if let Some(len) = req.header("content-length") {
        let len: usize =
            len.parse().map_err(|_| format!("malformed content-length {len:?}"))?;
        if len > MAX_BODY {
            return Err(format!("request body of {len} bytes exceeds the {MAX_BODY} cap"));
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).map_err(|e| format!("reading body: {e}"))?;
        req.body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    }
    Ok(req)
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

/// Writes one complete response and leaves the connection to be closed
/// (every exchange is single-shot).
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> Result<(), String> {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(status),
        body.len(),
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("writing response: {e}"))
}
