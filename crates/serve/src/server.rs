//! The server: accept loop, routing, admission control, the bounded
//! executor pool, and the in-memory run table backed by the persistent
//! [`RunStore`].
//!
//! ## Dedup
//!
//! The run table is keyed by the spec fingerprint ([`crate::SpecInfo`]'s
//! `id`). A submission whose id already exists — queued, running, done
//! or failed — **joins** that run (`200`, `"joined":true`) instead of
//! creating work; only an unseen fingerprint enqueues (`201`).
//! Validation runs outside the table lock (it is the expensive part),
//! then the id is re-checked under the lock, so concurrent identical
//! submissions race to exactly one insertion.
//!
//! ## Restart
//!
//! On startup every stored run record is reloaded: `done` runs whose
//! result document exists are served warm; `queued` and `running` runs
//! (and `done` records whose result write never landed) are re-queued
//! in id order; `failed` runs keep their error. A completed result is
//! re-served byte-for-byte because the store never re-encodes it.

use crate::http::{read_request, write_response, Request};
use crate::store::{progress_json, RunRecord, RunState, RunStore};
use crate::{Engine, Progress, SCHEMA};
use rix_isa::json::Json;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Service tuning (the listen address is a separate [`Server::bind`]
/// argument).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The persistent store's root directory.
    pub data_dir: String,
    /// Queued-run cap: submissions beyond it are refused with `429`
    /// (admission control, so a flood degrades loudly instead of
    /// building an unbounded backlog).
    pub queue_cap: usize,
    /// Executor threads draining the queue. `0` accepts and persists
    /// submissions without running anything — useful for drain-free
    /// inspection and exercised by the restart tests.
    pub executors: usize,
    /// Bearer token every request must present, when set.
    pub token: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { data_dir: String::new(), queue_cap: 64, executors: 1, token: None }
    }
}

struct State {
    runs: HashMap<String, RunRecord>,
    queue: VecDeque<String>,
}

struct Inner {
    cfg: ServerConfig,
    engine: Box<dyn Engine>,
    store: RunStore,
    state: Mutex<State>,
    work: Condvar,
    stop: AtomicBool,
}

/// A bound server: listener up, store loaded, executors running.
/// Consume with [`Server::run`] (the CLI's accept-forever loop) or
/// [`Server::spawn`] (background thread + [`ServerHandle`], for tests
/// and embedding).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    inner: Arc<Inner>,
    executors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (port 0 picks a free port), opens the store, warms
    /// the run table from disk, and starts the executor pool. Announces
    /// `serve-api: listening on <addr>` on stderr — the line scripts
    /// parse for the chosen port.
    pub fn bind(
        addr: &str,
        cfg: ServerConfig,
        engine: Box<dyn Engine>,
    ) -> Result<Self, String> {
        let store = RunStore::open(&cfg.data_dir)?;
        let mut state = State { runs: HashMap::new(), queue: VecDeque::new() };
        // load_runs is id-sorted, so the re-queue order is stable.
        for mut run in store.load_runs()? {
            let requeue = match run.state {
                RunState::Queued | RunState::Running => true,
                RunState::Done => !store.has_result(&run.id),
                RunState::Failed => false,
            };
            if requeue {
                run.state = RunState::Queued;
                run.error = None;
                run.progress = Progress { total: run.cells, ..Progress::default() };
                store.save_run(&run)?;
                state.queue.push_back(run.id.clone());
            }
            state.runs.insert(run.id.clone(), run);
        }
        let listener = TcpListener::bind(addr)
            .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve listen address: {e}"))?;
        eprintln!("serve-api: listening on {local}");
        let inner = Arc::new(Inner {
            engine,
            store,
            state: Mutex::new(state),
            work: Condvar::new(),
            stop: AtomicBool::new(false),
            cfg,
        });
        let executors = (0..inner.cfg.executors)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || executor_loop(&inner))
            })
            .collect();
        Ok(Self { listener, addr: local, inner, executors })
    }

    /// The bound address (with the actual port when bound to port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves forever on the calling thread (the CLI entry point).
    pub fn run(self) -> ! {
        for stream in self.listener.incoming().flatten() {
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || handle_connection(&inner, stream));
        }
        unreachable!("TcpListener::incoming never returns None")
    }

    /// Serves on a background thread and returns a handle that can
    /// stop the server cleanly (used by tests and embedders).
    #[must_use]
    pub fn spawn(self) -> ServerHandle {
        let inner = Arc::clone(&self.inner);
        let addr = self.addr;
        let listener = self.listener;
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if inner.stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    let inner = Arc::clone(&inner);
                    std::thread::spawn(move || handle_connection(&inner, stream));
                }
            }
        });
        ServerHandle { addr, inner: self.inner, accept: Some(accept), executors: self.executors }
    }
}

/// Controls a [`Server::spawn`]ed server.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, winds down the executor pool (any in-flight run
    /// finishes first), and joins every service thread.
    pub fn stop(mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.work.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
    }
}

// ----- the executor pool ------------------------------------------------

fn executor_loop(inner: &Inner) {
    while let Some(id) = next_queued(inner) {
        run_one(inner, &id);
    }
}

fn next_queued(inner: &Inner) -> Option<String> {
    let mut state = inner.state.lock().expect("state mutex never poisoned");
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return None;
        }
        if let Some(id) = state.queue.pop_front() {
            return Some(id);
        }
        let (next, _) = inner
            .work
            .wait_timeout(state, Duration::from_millis(50))
            .expect("state mutex never poisoned");
        state = next;
    }
}

fn run_one(inner: &Inner, id: &str) {
    let spec = {
        let mut state = inner.state.lock().expect("state mutex never poisoned");
        let Some(run) = state.runs.get_mut(id) else { return };
        run.state = RunState::Running;
        let _ = inner.store.save_run(run);
        run.spec.clone()
    };
    let cache_dir = inner.store.cache_dir();
    // Live progress goes to the in-memory table only (status reads it
    // from there); durable state changes are the coarse transitions.
    let mut on_progress = |p: Progress| {
        if let Ok(mut state) = inner.state.lock() {
            if let Some(run) = state.runs.get_mut(id) {
                run.progress = p;
            }
        }
    };
    let outcome = inner.engine.execute(&spec, &cache_dir, &mut on_progress);
    let mut state = inner.state.lock().expect("state mutex never poisoned");
    let Some(run) = state.runs.get_mut(id) else { return };
    match outcome {
        Ok(out) => match inner.store.save_result(id, &out.doc) {
            Ok(()) => {
                run.state = RunState::Done;
                run.dispatch = out.dispatch;
                run.error = None;
            }
            Err(e) => {
                run.state = RunState::Failed;
                run.error = Some(e);
            }
        },
        Err(e) => {
            run.state = RunState::Failed;
            run.error = Some(e);
        }
    }
    if let Err(e) = inner.store.save_run(run) {
        eprintln!("serve-api: cannot persist run {id}: {e}");
    }
}

// ----- routing ----------------------------------------------------------

fn handle_connection(inner: &Inner, mut stream: TcpStream) {
    let req = match read_request(&mut stream) {
        Ok(req) => req,
        Err(e) => {
            let _ = write_response(&mut stream, 400, &error_body(&e));
            return;
        }
    };
    let (status, body) = route(inner, &req);
    let _ = write_response(&mut stream, status, &body);
}

fn error_body(msg: &str) -> String {
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("error".into(), Json::Str(msg.into())),
    ])
    .dump()
}

fn route(inner: &Inner, req: &Request) -> (u16, String) {
    if let Some(expected) = &inner.cfg.token {
        let presented =
            req.header("authorization").and_then(|v| v.strip_prefix("Bearer ")).map(str::trim);
        if presented != Some(expected.as_str()) {
            return (401, error_body("missing or invalid bearer token"));
        }
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/runs") => submit(inner, &req.body),
        ("GET", "/v1/runs") => list(inner),
        ("GET", path) => match path.strip_prefix("/v1/runs/") {
            Some(rest) => match rest.strip_suffix("/result") {
                Some(id) => result(inner, id),
                None if !rest.contains('/') => status(inner, rest),
                None => (404, error_body("no such endpoint")),
            },
            None => (404, error_body("no such endpoint")),
        },
        ("POST", _) => (404, error_body("no such endpoint")),
        _ => (405, error_body("method not allowed")),
    }
}

fn submit(inner: &Inner, body: &str) -> (u16, String) {
    // Validation is the expensive step — keep it outside the lock and
    // re-check the id under it, so identical racing submissions all
    // validate but exactly one inserts.
    let info = match inner.engine.validate(body) {
        Ok(info) => info,
        Err(e) => return (400, error_body(&format!("invalid spec: {e}"))),
    };
    let mut state = inner.state.lock().expect("state mutex never poisoned");
    if let Some(run) = state.runs.get(&info.id) {
        return (200, submit_reply(run, true));
    }
    if state.queue.len() >= inner.cfg.queue_cap {
        return (
            429,
            error_body(&format!(
                "run queue is full ({} queued, cap {})",
                state.queue.len(),
                inner.cfg.queue_cap
            )),
        );
    }
    let run = RunRecord {
        id: info.id.clone(),
        name: info.name,
        spec: info.canonical_spec,
        cells: info.cells,
        state: RunState::Queued,
        error: None,
        progress: Progress { total: info.cells, ..Progress::default() },
        dispatch: None,
    };
    if let Err(e) = inner.store.save_run(&run) {
        return (500, error_body(&e));
    }
    let reply = submit_reply(&run, false);
    state.queue.push_back(info.id.clone());
    state.runs.insert(info.id, run);
    inner.work.notify_all();
    (201, reply)
}

fn submit_reply(run: &RunRecord, joined: bool) -> String {
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("id".into(), Json::Str(run.id.clone())),
        ("state".into(), Json::Str(run.state.name().into())),
        ("cells".into(), Json::Num(run.cells.to_string())),
        ("joined".into(), Json::Bool(joined)),
    ])
    .dump()
}

fn status(inner: &Inner, id: &str) -> (u16, String) {
    let state = inner.state.lock().expect("state mutex never poisoned");
    let Some(run) = state.runs.get(id) else {
        return (404, error_body(&format!("no run {id}")));
    };
    let mut fields: Vec<(String, Json)> = vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("id".into(), Json::Str(run.id.clone())),
        ("name".into(), run.name.as_ref().map_or(Json::Null, |n| Json::Str(n.clone()))),
        ("state".into(), Json::Str(run.state.name().into())),
        ("cells".into(), Json::Num(run.cells.to_string())),
        ("progress".into(), progress_json(run.progress)),
    ];
    if let Some(d) = &run.dispatch {
        fields.push(("dispatch".into(), Json::parse(d).unwrap_or(Json::Null)));
    }
    if let Some(e) = &run.error {
        fields.push(("error".into(), Json::Str(e.clone())));
    }
    (200, Json::Obj(fields).dump())
}

fn list(inner: &Inner) -> (u16, String) {
    let state = inner.state.lock().expect("state mutex never poisoned");
    let mut runs: Vec<&RunRecord> = state.runs.values().collect();
    runs.sort_by(|a, b| a.id.cmp(&b.id));
    let rows = runs
        .iter()
        .map(|run| {
            Json::Obj(vec![
                ("id".into(), Json::Str(run.id.clone())),
                (
                    "name".into(),
                    run.name.as_ref().map_or(Json::Null, |n| Json::Str(n.clone())),
                ),
                ("state".into(), Json::Str(run.state.name().into())),
                ("cells".into(), Json::Num(run.cells.to_string())),
            ])
        })
        .collect();
    let body = Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("runs".into(), Json::Arr(rows)),
    ]);
    (200, body.dump())
}

fn result(inner: &Inner, id: &str) -> (u16, String) {
    let run_state = {
        let state = inner.state.lock().expect("state mutex never poisoned");
        state.runs.get(id).map(|r| r.state)
    };
    match run_state {
        None => (404, error_body(&format!("no run {id}"))),
        Some(RunState::Done) => match inner.store.load_result(id) {
            Some(doc) => (200, doc),
            None => (500, error_body("result document is missing from the store")),
        },
        Some(s) => (
            409,
            error_body(&format!("run {id} is {} — its result is not available yet", s.name())),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{client, RunOutput, SpecInfo};
    use std::sync::atomic::AtomicUsize;

    fn scratch(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("rix-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_str().unwrap().to_string()
    }

    /// Specs are `{"id":"0x…","name":…}` objects; executing one sleeps,
    /// bumps a shared counter, and bakes the execution ordinal into the
    /// doc — so a re-simulation is visible as both a counter bump and a
    /// byte difference.
    #[derive(Clone)]
    struct MockEngine {
        delay: Duration,
        executions: Arc<AtomicUsize>,
    }

    impl MockEngine {
        fn new(delay_ms: u64) -> Self {
            Self {
                delay: Duration::from_millis(delay_ms),
                executions: Arc::new(AtomicUsize::new(0)),
            }
        }
    }

    impl Engine for MockEngine {
        fn validate(&self, spec_text: &str) -> Result<SpecInfo, String> {
            let v = Json::parse(spec_text)?;
            let id = v
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| "spec needs an `id`".to_string())?;
            Ok(SpecInfo {
                id: id.to_string(),
                name: v.get("name").and_then(Json::as_str).map(str::to_string),
                canonical_spec: v.dump(),
                cells: 3,
            })
        }

        fn execute(
            &self,
            spec_text: &str,
            _cache_dir: &str,
            progress: &mut dyn FnMut(Progress),
        ) -> Result<RunOutput, String> {
            std::thread::sleep(self.delay);
            let n = self.executions.fetch_add(1, Ordering::SeqCst) + 1;
            let id = Json::parse(spec_text)
                .ok()
                .and_then(|v| v.get("id").and_then(Json::as_str).map(str::to_string))
                .unwrap_or_default();
            if id == "0xfail" {
                return Err("engine exploded".to_string());
            }
            progress(Progress { total: 3, done: 3, cached: 0, degraded: 0 });
            Ok(RunOutput {
                doc: format!("{{\"doc_for\":\"{id}\",\"execution\":{n}}}\n"),
                dispatch: Some(r#"{"cells":3}"#.to_string()),
            })
        }
    }

    fn serve(
        dir: &str,
        executors: usize,
        queue_cap: usize,
        token: Option<&str>,
        engine: &MockEngine,
    ) -> ServerHandle {
        let cfg = ServerConfig {
            data_dir: dir.to_string(),
            queue_cap,
            executors,
            token: token.map(str::to_string),
        };
        Server::bind("127.0.0.1:0", cfg, Box::new(engine.clone())).unwrap().spawn()
    }

    fn post(addr: &str, spec: &str) -> (u16, String) {
        client::request(addr, "POST", "/v1/runs", None, Some(spec)).unwrap()
    }

    fn get(addr: &str, path: &str) -> (u16, String) {
        client::request(addr, "GET", path, None, None).unwrap()
    }

    fn state_of(body: &str) -> String {
        Json::parse(body)
            .unwrap()
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    }

    fn wait_done(addr: &str, id: &str) {
        for _ in 0..200 {
            let (code, body) = get(addr, &format!("/v1/runs/{id}"));
            assert_eq!(code, 200, "{body}");
            match state_of(&body).as_str() {
                "done" => return,
                "failed" => panic!("run {id} failed: {body}"),
                _ => std::thread::sleep(Duration::from_millis(25)),
            }
        }
        panic!("run {id} never finished");
    }

    #[test]
    fn concurrent_identical_submissions_execute_exactly_once() {
        let dir = scratch("dedup");
        let engine = MockEngine::new(150);
        let handle = serve(&dir, 2, 16, None, &engine);
        let addr = handle.addr().to_string();
        let spec = r#"{"id":"0x2a","name":"mock"}"#;

        let replies: Vec<(u16, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..6).map(|_| scope.spawn(|| post(&addr, spec))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let created = replies.iter().filter(|(code, _)| *code == 201).count();
        let joined = replies.iter().filter(|(code, _)| *code == 200).count();
        assert_eq!((created, joined), (1, 5), "{replies:?}");
        for (_, body) in &replies {
            let v = Json::parse(body).unwrap();
            assert_eq!(v.get("id").and_then(Json::as_str), Some("0x2a"));
        }

        wait_done(&addr, "0x2a");
        let docs: Vec<String> = (0..4)
            .map(|_| {
                let (code, doc) = get(&addr, "/v1/runs/0x2a/result");
                assert_eq!(code, 200, "{doc}");
                doc
            })
            .collect();
        assert!(docs.windows(2).all(|w| w[0] == w[1]), "all fetches identical");
        assert!(docs[0].contains("\"execution\":1"), "{}", docs[0]);
        assert_eq!(engine.executions.load(Ordering::SeqCst), 1, "one simulation");

        // A late identical submission joins the completed run.
        let (code, body) = post(&addr, spec);
        assert_eq!(code, 200, "{body}");
        assert_eq!(state_of(&body), "done");
        assert_eq!(engine.executions.load(Ordering::SeqCst), 1);

        // Status carries progress and the structured dispatch report.
        let (_, body) = get(&addr, "/v1/runs/0x2a");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("progress").and_then(|p| p.get("done")).and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("dispatch").and_then(|d| d.get("cells")).and_then(Json::as_u64), Some(3));

        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_cap_refuses_with_429_but_joins_still_work() {
        let dir = scratch("cap");
        let engine = MockEngine::new(0);
        let handle = serve(&dir, 0, 2, None, &engine);
        let addr = handle.addr().to_string();
        assert_eq!(post(&addr, r#"{"id":"0x01"}"#).0, 201);
        assert_eq!(post(&addr, r#"{"id":"0x02"}"#).0, 201);
        let (code, body) = post(&addr, r#"{"id":"0x03"}"#);
        assert_eq!(code, 429, "{body}");
        assert!(body.contains("queue is full"), "{body}");
        // Joining an existing run bypasses admission control: no new work.
        assert_eq!(post(&addr, r#"{"id":"0x01"}"#).0, 200);
        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bearer_token_gates_every_endpoint() {
        let dir = scratch("auth");
        let engine = MockEngine::new(0);
        let handle = serve(&dir, 0, 8, Some("hush"), &engine);
        let addr = handle.addr().to_string();
        let spec = r#"{"id":"0x05"}"#;
        let (code, body) =
            client::request(&addr, "POST", "/v1/runs", None, Some(spec)).unwrap();
        assert_eq!(code, 401, "{body}");
        assert!(body.contains("bearer token"), "{body}");
        let (code, _) = client::request(&addr, "GET", "/v1/runs", Some("wrong"), None).unwrap();
        assert_eq!(code, 401);
        let (code, _) =
            client::request(&addr, "POST", "/v1/runs", Some("hush"), Some(spec)).unwrap();
        assert_eq!(code, 201);
        let (code, _) = client::request(&addr, "GET", "/v1/runs", Some("hush"), None).unwrap();
        assert_eq!(code, 200);
        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_serves_completed_runs_warm_and_requeues_the_rest() {
        let dir = scratch("restart");
        let engine = MockEngine::new(0);

        // Phase 1: accept-only server takes two runs, then dies
        // "mid-queue" (nothing executed).
        let a = serve(&dir, 0, 8, None, &engine);
        let addr = a.addr().to_string();
        assert_eq!(post(&addr, r#"{"id":"0x0a","name":"first"}"#).0, 201);
        assert_eq!(post(&addr, r#"{"id":"0x0b","name":"second"}"#).0, 201);
        a.stop();

        // Phase 2: restarted (still accept-only) — both runs are listed
        // as queued, and a duplicate submission joins instead of
        // re-enqueueing.
        let b = serve(&dir, 0, 8, None, &engine);
        let addr = b.addr().to_string();
        let (code, body) = get(&addr, "/v1/runs");
        assert_eq!(code, 200);
        let v = Json::parse(&body).unwrap();
        let runs = v.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 2, "{body}");
        assert!(runs
            .iter()
            .all(|r| r.get("state").and_then(Json::as_str) == Some("queued")));
        let (code, body) = post(&addr, r#"{"id":"0x0a","name":"first"}"#);
        assert_eq!((code, state_of(&body)), (200, "queued".to_string()));
        let (code, body) = get(&addr, "/v1/runs/0x0a/result");
        assert_eq!(code, 409, "queued run has no result yet: {body}");
        b.stop();
        assert_eq!(engine.executions.load(Ordering::SeqCst), 0);

        // Phase 3: restart with an executor — the queue drains.
        let c = serve(&dir, 1, 8, None, &engine);
        let addr = c.addr().to_string();
        wait_done(&addr, "0x0a");
        wait_done(&addr, "0x0b");
        let (_, doc_a) = get(&addr, "/v1/runs/0x0a/result");
        c.stop();
        assert_eq!(engine.executions.load(Ordering::SeqCst), 2);

        // Phase 4: restart again — completed results serve byte-identical
        // with no executor and no re-simulation.
        let d = serve(&dir, 0, 8, None, &engine);
        let addr = d.addr().to_string();
        let (code, body) = get(&addr, "/v1/runs/0x0a");
        assert_eq!((code, state_of(&body)), (200, "done".to_string()));
        let (code, doc_again) = get(&addr, "/v1/runs/0x0a/result");
        assert_eq!(code, 200);
        assert_eq!(doc_again, doc_a, "re-served bytes are identical");
        let (code, body) = post(&addr, r#"{"id":"0x0a","name":"first"}"#);
        assert_eq!((code, state_of(&body)), (200, "done".to_string()));
        d.stop();
        assert_eq!(engine.executions.load(Ordering::SeqCst), 2, "nothing re-simulated");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_structured() {
        let dir = scratch("errors");
        let engine = MockEngine::new(0);
        let handle = serve(&dir, 1, 8, None, &engine);
        let addr = handle.addr().to_string();
        let (code, body) = post(&addr, "not json at all");
        assert_eq!(code, 400, "{body}");
        assert!(body.contains("invalid spec"), "{body}");
        let (code, body) = get(&addr, "/v1/runs/0xmissing");
        assert_eq!(code, 404, "{body}");
        let (code, _) = get(&addr, "/v1/nope");
        assert_eq!(code, 404);
        let (code, _) = client::request(&addr, "DELETE", "/v1/runs", None, None).unwrap();
        assert_eq!(code, 405);
        // A failing engine marks the run failed with its error.
        assert_eq!(post(&addr, r#"{"id":"0xfail"}"#).0, 201);
        for _ in 0..200 {
            let (_, body) = get(&addr, "/v1/runs/0xfail");
            if state_of(&body) == "failed" {
                assert!(body.contains("engine exploded"), "{body}");
                let (code, _) = get(&addr, "/v1/runs/0xfail/result");
                assert_eq!(code, 409);
                handle.stop();
                let _ = std::fs::remove_dir_all(&dir);
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        panic!("0xfail never reached the failed state");
    }
}
