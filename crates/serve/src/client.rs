//! The thin client side of the API: one function that performs a
//! single request/response exchange (what the `exp`
//! `submit`/`status`/`fetch`/`runs` subcommands are built on).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Performs one `rix-serve/1` exchange against `addr` and returns
/// `(status, body)`. `token` adds the bearer header; `body` makes it a
/// JSON request body. Network and protocol failures are errors; HTTP
/// error statuses are returned to the caller, who knows what each
/// means for its endpoint.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    token: Option<&str>,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));

    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if let Some(token) = token {
        req.push_str(&format!("Authorization: Bearer {token}\r\n"));
    }
    match body {
        Some(body) => req.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )),
        None => req.push_str("\r\n"),
    }
    stream
        .write_all(req.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("sending request to {addr}: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("reading reply from {addr}: {e}"))?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line from {addr}: {:?}", line.trim_end()))?;

    let mut content_length: Option<usize> = None;
    loop {
        line.clear();
        reader.read_line(&mut line).map_err(|e| format!("reading reply headers: {e}"))?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf).map_err(|e| format!("reading reply body: {e}"))?;
            String::from_utf8(buf).map_err(|_| "reply body is not UTF-8".to_string())?
        }
        None => {
            let mut buf = String::new();
            reader
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading reply body: {e}"))?;
            buf
        }
    };
    Ok((status, body))
}
