//! # rix-serve: the experiment API service
//!
//! A long-lived HTTP/1.1 + JSON server that turns the one-shot
//! experiment engine into a shared farm: many clients submit
//! `rix-exp/1` specs, the server validates them, keys each run by the
//! spec's 128-bit fingerprint, and executes through a bounded pool —
//! **identical submissions join the in-flight or completed run instead
//! of re-simulating**, whether they race it live or arrive after a
//! restart. Everything durable (run records, result documents, the
//! trial cache) lives under a `--data-dir` with atomic writes
//! ([`store`]), so a restarted server lists prior runs warm and
//! re-serves completed results byte-for-byte.
//!
//! The crate is engine-agnostic: the [`Engine`] trait is the seam
//! between HTTP/queueing/persistence (here) and simulation semantics
//! (`rix-bench`'s `service` module implements it over the real `Sweep`
//! engine; tests implement mocks). Like the dispatch layer, it is
//! hand-rolled over `std` — no registry dependencies; JSON is
//! [`rix_isa::json`].
//!
//! ## API (`rix-serve/1`)
//!
//! | method & path | body | replies |
//! |---|---|---|
//! | `POST /v1/runs` | a `rix-exp/1` spec | `201` accepted / `200` joined an existing run (`"joined":true`) / `400` invalid spec / `429` queue full |
//! | `GET /v1/runs` | — | `200` run listing |
//! | `GET /v1/runs/{id}` | — | `200` status + progress / `404` |
//! | `GET /v1/runs/{id}/result` | — | `200` the stored `rix-exp-result/1` bytes / `409` not finished / `404` |
//!
//! Every reply body (except the raw result document) is a
//! `{"schema":"rix-serve/1", …}` object; errors carry an `"error"`
//! field. With a server token set, every request must present
//! `Authorization: Bearer <token>` or is answered `401`.

pub mod client;
pub mod http;
pub mod server;
pub mod store;

pub use server::{Server, ServerConfig, ServerHandle};
pub use store::{RunRecord, RunState, RunStore};

/// The API reply schema.
pub const SCHEMA: &str = "rix-serve/1";

/// The durable run-record schema (see [`store`]).
pub const RUN_SCHEMA: &str = "rix-serve-run/1";

/// Cell-progress counters for one run, updated live while it executes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Progress {
    /// Grid cells in the run.
    pub total: usize,
    /// Cells finished so far (simulated or reused).
    pub done: usize,
    /// Of `done`, cells reused from the trial cache.
    pub cached: usize,
    /// Of `done`, cells that degraded from remote workers to in-process
    /// execution.
    pub degraded: usize,
}

/// What validation learned about a spec — everything the service needs
/// to admit, dedup and list a run without understanding specs itself.
#[derive(Clone, Debug)]
pub struct SpecInfo {
    /// The run id: the spec's `fingerprint128` as `0x…` hex. Identical
    /// specs produce identical ids, which is the dedup key.
    pub id: String,
    /// The spec's `name`, for listings.
    pub name: Option<String>,
    /// The canonical (compact) spec JSON, as persisted in run records.
    pub canonical_spec: String,
    /// Grid cells the spec materialises.
    pub cells: usize,
}

/// What executing a run produced.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// The complete `rix-exp-result/1` document — stored and re-served
    /// byte-for-byte, so it must already be in its final form
    /// (trailing newline included).
    pub doc: String,
    /// The structured dispatch report (compact JSON), surfaced in run
    /// status.
    pub dispatch: Option<String>,
}

/// The simulation engine behind the service. Implementations must be
/// shareable across executor threads.
pub trait Engine: Send + Sync {
    /// Full validation, exactly as strict as `exp --dry-run` for the
    /// real engine: parse, shape-check, lint, checkpoint-file checks.
    /// `Ok` admits the spec and names its run.
    fn validate(&self, spec_text: &str) -> Result<SpecInfo, String>;

    /// Executes the spec to completion, reporting cell progress through
    /// `progress` along the way, and returns the finished result
    /// document. `cache_dir` is the store's trial-cache directory —
    /// engines that cache use it so dedup survives restarts.
    fn execute(
        &self,
        spec_text: &str,
        cache_dir: &str,
        progress: &mut dyn FnMut(Progress),
    ) -> Result<RunOutput, String>;
}
