//! The return-address stack.
//!
//! Beyond predicting `ret` targets, the RAS plays a second role in this
//! paper: its top-of-stack index is the **call depth** that extension 2
//! XORs into the integration-table index (§2.3). Call depth groups IT
//! entries by static function *and* dynamic invocation — save/restore
//! pairs always agree on it, which is what makes reverse integration
//! conflict-free in a set-associative IT.
//!
//! The stack is a circular buffer: pushing past capacity wraps and
//! overwrites the oldest entry (depth saturates), popping an empty stack
//! returns 0. Squash repair restores the TOS index and the one entry a
//! wrong-path push may have clobbered.

use rix_isa::InstAddr;

/// Circular return-address stack.
#[derive(Clone, Debug)]
pub struct Ras {
    entries: Vec<InstAddr>,
    tos: usize, // number of live entries, saturating at capacity for depth purposes
}

impl Ras {
    /// Creates a RAS with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS needs at least one entry");
        Self { entries: vec![0; capacity], tos: 0 }
    }

    /// Current call depth (top-of-stack index). This is the value mixed
    /// into the IT index by opcode-based indexing.
    #[must_use]
    pub fn depth(&self) -> u16 {
        self.tos.min(u16::MAX as usize) as u16
    }

    /// Raw TOS counter (monotone across wrap; used for checkpointing).
    #[must_use]
    pub fn tos(&self) -> usize {
        self.tos
    }

    /// The entry a push at the current TOS would overwrite (used for
    /// checkpointing).
    #[must_use]
    pub fn top(&self) -> InstAddr {
        self.entries[self.tos % self.entries.len()]
    }

    /// Pushes a return address (on `jsr`).
    pub fn push(&mut self, addr: InstAddr) {
        let idx = self.tos % self.entries.len();
        self.entries[idx] = addr;
        self.tos += 1;
    }

    /// Pops the predicted return target (on `ret`); returns 0 when empty.
    pub fn pop(&mut self) -> InstAddr {
        if self.tos == 0 {
            return 0;
        }
        self.tos -= 1;
        self.entries[self.tos % self.entries.len()]
    }

    /// Restores the checkpointed TOS and the (possibly clobbered) slot at
    /// it.
    pub fn restore(&mut self, tos: usize, top: InstAddr) {
        self.tos = tos;
        let idx = self.tos % self.entries.len();
        self.entries[idx] = top;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_pop_lifo() {
        let mut r = Ras::new(8);
        r.push(10);
        r.push(20);
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), 20);
        assert_eq!(r.pop(), 10);
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn empty_pop_is_zero() {
        let mut r = Ras::new(4);
        assert_eq!(r.pop(), 0);
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn wraps_past_capacity() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.pop(), 3);
        assert_eq!(r.pop(), 2);
        assert_eq!(r.pop(), 3, "wrapped slot: oldest was overwritten");
    }

    #[test]
    fn restore_undoes_wrong_path_push() {
        let mut r = Ras::new(8);
        r.push(100);
        let (tos, top) = (r.tos(), r.top());
        r.push(999); // wrong path
        r.restore(tos, top);
        assert_eq!(r.depth(), 1);
        assert_eq!(r.pop(), 100);
    }

    #[test]
    fn restore_undoes_wrong_path_pop() {
        let mut r = Ras::new(8);
        r.push(100);
        r.push(200);
        let (tos, top) = (r.tos(), r.top());
        assert_eq!(r.pop(), 200); // wrong path
        r.restore(tos, top);
        assert_eq!(r.pop(), 200, "pop restored");
    }

    proptest! {
        /// Within capacity, the RAS behaves exactly like a Vec stack.
        #[test]
        fn matches_vec_stack(ops in proptest::collection::vec(proptest::option::of(1u64..1000), 0..64)) {
            let mut r = Ras::new(64);
            let mut v: Vec<u64> = Vec::new();
            for op in ops {
                match op {
                    Some(addr) => {
                        if v.len() < 64 {
                            r.push(addr);
                            v.push(addr);
                        }
                    }
                    None => {
                        let expect = v.pop().unwrap_or(0);
                        prop_assert_eq!(r.pop(), expect);
                    }
                }
                prop_assert_eq!(r.depth() as usize, v.len());
            }
        }
    }
}
