//! Branch target buffer.
//!
//! A 4K-entry, 4-way set-associative cache of branch targets (§3.1). In
//! this simulator direct targets are available from the decoded
//! instruction, so the BTB's role is timing: a taken-predicted branch
//! whose PC misses in the BTB redirects at decode instead of fetch,
//! costing a front-end bubble.

use rix_isa::InstAddr;

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    pc: InstAddr,
    target: InstAddr,
    valid: bool,
    lru: u64,
}

/// Set-associative branch target buffer with true-LRU replacement.
#[derive(Clone, Debug)]
pub struct Btb {
    sets: Vec<Vec<Entry>>,
    num_sets: u64,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by `ways`, or either is zero.
    #[must_use]
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0 && entries > 0 && entries.is_multiple_of(ways), "bad BTB geometry");
        let num_sets = (entries / ways) as u64;
        Self {
            sets: vec![vec![Entry::default(); ways]; num_sets as usize],
            num_sets,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, pc: InstAddr) -> usize {
        // Power-of-two set counts (all realistic geometries) index with
        // a mask instead of a hardware divide.
        if self.num_sets.is_power_of_two() {
            (pc & (self.num_sets - 1)) as usize
        } else {
            (pc % self.num_sets) as usize
        }
    }

    /// Looks up the predicted target for the branch at `pc`.
    #[must_use]
    pub fn lookup(&self, pc: InstAddr) -> Option<InstAddr> {
        let set = self.set_of(pc);
        self.sets[set]
            .iter()
            .find(|e| e.valid && e.pc == pc)
            .map(|e| e.target)
    }

    /// Installs (or refreshes) the target for the branch at `pc`.
    pub fn insert(&mut self, pc: InstAddr, target: InstAddr) {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(pc);
        let lines = &mut self.sets[set];
        if let Some(e) = lines.iter_mut().find(|e| e.valid && e.pc == pc) {
            e.target = target;
            e.lru = stamp;
            self.hits += 1;
            return;
        }
        self.misses += 1;
        let victim = lines
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("BTB set non-empty");
        *victim = Entry { pc, target, valid: true, lru: stamp };
    }

    /// Number of inserts that refreshed an existing entry.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of inserts that allocated a new entry.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut b = Btb::new(16, 4);
        assert_eq!(b.lookup(100), None);
        b.insert(100, 7);
        assert_eq!(b.lookup(100), Some(7));
    }

    #[test]
    fn update_refreshes_target() {
        let mut b = Btb::new(16, 4);
        b.insert(100, 7);
        b.insert(100, 9);
        assert_eq!(b.lookup(100), Some(9));
        assert_eq!(b.hits(), 1);
        assert_eq!(b.misses(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut b = Btb::new(8, 2); // 4 sets, 2 ways
        // PCs 0, 4, 8 all map to set 0.
        b.insert(0, 10);
        b.insert(4, 14);
        b.insert(0, 10); // touch 0 → 4 is LRU
        b.insert(8, 18); // evicts 4
        assert_eq!(b.lookup(0), Some(10));
        assert_eq!(b.lookup(4), None);
        assert_eq!(b.lookup(8), Some(18));
    }

    #[test]
    #[should_panic(expected = "bad BTB geometry")]
    fn bad_geometry_rejected() {
        let _ = Btb::new(10, 4);
    }
}
