//! # rix-frontend: branch prediction and next-PC generation
//!
//! The paper's front end (§3.1): an 8K-entry hybrid gshare/bimodal
//! conditional-branch predictor with a 4K-entry BTB and a return-address
//! stack. The RAS also supplies the *call depth* (its top-of-stack index),
//! which extension 2 mixes into the integration-table index (§2.3).
//!
//! All predictor state is updated speculatively at fetch; every branch
//! carries a [`SpecCheckpoint`] so the core can repair global history and
//! the RAS when the branch squashes.

pub mod btb;
pub mod predictor;
pub mod ras;

pub use btb::Btb;
pub use predictor::{HybridPredictor, PredictorConfig};
pub use ras::Ras;

use rix_isa::{InstAddr, Instr, Opcode};

/// State snapshot taken at prediction time, used to repair speculative
/// front-end state when the instruction squashes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecCheckpoint {
    /// Global history register before this prediction.
    pub history: u64,
    /// RAS top-of-stack index before this prediction.
    pub ras_tos: usize,
    /// RAS top entry before this prediction (repairs a clobbered slot).
    pub ras_top: InstAddr,
}

/// The outcome of predicting one fetched instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted next fetch PC.
    pub next_pc: InstAddr,
    /// Predicted direction for conditional branches (`false` otherwise).
    pub taken: bool,
    /// Call depth (RAS TOS index) *at this instruction*, used by
    /// opcode-based IT indexing.
    pub call_depth: u16,
    /// Snapshot taken *before* this prediction updated speculative state.
    /// Use for squashes that re-fetch this instruction (it will re-predict
    /// and re-update), and for conditional-branch repairs together with
    /// the corrected outcome.
    pub checkpoint: SpecCheckpoint,
    /// Snapshot taken *after* this prediction updated speculative state.
    /// Use for squashes of everything younger where this instruction's
    /// own effect must be kept (e.g. a mispredicted `ret`: the RAS pop
    /// stands, only the wrong-path updates are undone).
    pub post_checkpoint: SpecCheckpoint,
}

/// The complete front end: predictor + BTB + RAS.
///
/// ```
/// use rix_frontend::FrontEnd;
/// use rix_isa::{Instr, Opcode, reg};
///
/// let mut fe = FrontEnd::default();
/// let br = Instr::cond_branch(Opcode::Bne, reg::R1, 100);
/// let p = fe.predict(5, br);
/// assert!(p.next_pc == 6 || p.next_pc == 100);
/// ```
#[derive(Clone, Debug)]
pub struct FrontEnd {
    predictor: HybridPredictor,
    btb: Btb,
    ras: Ras,
    predictions: u64,
    cond_predictions: u64,
}

impl Default for FrontEnd {
    fn default() -> Self {
        Self::new(PredictorConfig::default())
    }
}

impl FrontEnd {
    /// Builds a front end with the given predictor configuration
    /// (paper-default BTB and RAS sizes).
    #[must_use]
    pub fn new(cfg: PredictorConfig) -> Self {
        Self {
            predictor: HybridPredictor::new(cfg),
            btb: Btb::new(4096, 4),
            ras: Ras::new(64),
            predictions: 0,
            cond_predictions: 0,
        }
    }

    /// The current call depth (RAS top-of-stack index).
    #[must_use]
    pub fn call_depth(&self) -> u16 {
        self.ras.depth()
    }

    /// Predicts the next PC for `instr` fetched at `pc`, speculatively
    /// updating history, BTB, and RAS.
    pub fn predict(&mut self, pc: InstAddr, instr: Instr) -> Prediction {
        self.predictions += 1;
        let checkpoint = SpecCheckpoint {
            history: self.predictor.history(),
            ras_tos: self.ras.tos(),
            ras_top: self.ras.top(),
        };
        let call_depth = self.ras.depth();
        let class = instr.op.exec_class();
        if !matches!(
            class,
            rix_isa::ExecClass::CondBranch
                | rix_isa::ExecClass::DirectJump
                | rix_isa::ExecClass::IndirectJump
        ) {
            // Non-control fall-through: no predictor state changes, so
            // the post-checkpoint equals the pre-checkpoint.
            return Prediction {
                next_pc: pc + 1,
                taken: false,
                call_depth,
                checkpoint,
                post_checkpoint: checkpoint,
            };
        }
        let (next_pc, taken) = match class {
            rix_isa::ExecClass::CondBranch => {
                self.cond_predictions += 1;
                let taken = self.predictor.predict_and_update(pc);
                // Direct conditional branches carry their target; the BTB
                // is consulted so a taken prediction without a BTB entry
                // still redirects correctly at decode (bubble charged by
                // the fetch unit via `btb_hit`).
                self.btb.insert(pc, instr.target);
                (if taken { instr.target } else { pc + 1 }, taken)
            }
            rix_isa::ExecClass::DirectJump => {
                if instr.op == Opcode::Jsr {
                    self.ras.push(pc + 1);
                }
                self.btb.insert(pc, instr.target);
                (instr.target, true)
            }
            rix_isa::ExecClass::IndirectJump => {
                let target = self.ras.pop();
                (target, true)
            }
            _ => (pc + 1, false),
        };
        let post_checkpoint = SpecCheckpoint {
            history: self.predictor.history(),
            ras_tos: self.ras.tos(),
            ras_top: self.ras.top(),
        };
        Prediction { next_pc, taken, call_depth, checkpoint, post_checkpoint }
    }

    /// Whether the BTB knows a target for `pc` (fetch-stage redirect
    /// without a decode bubble).
    #[must_use]
    pub fn btb_hit(&self, pc: InstAddr) -> bool {
        self.btb.lookup(pc).is_some()
    }

    /// Commits the true outcome of a conditional branch (trains the
    /// predictor tables with the resolved direction).
    pub fn resolve_cond(&mut self, pc: InstAddr, checkpoint: SpecCheckpoint, taken: bool) {
        self.predictor.train(pc, checkpoint.history, taken);
    }

    /// Repairs speculative state after a squash: restores global history
    /// (corrected with the branch's true outcome when `actual` is given)
    /// and the RAS.
    pub fn repair(&mut self, checkpoint: SpecCheckpoint, actual: Option<bool>) {
        self.predictor.set_history(checkpoint.history, actual);
        self.ras.restore(checkpoint.ras_tos, checkpoint.ras_top);
    }

    /// Total predictions made.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Conditional-branch predictions made.
    #[must_use]
    pub fn cond_predictions(&self) -> u64 {
        self.cond_predictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rix_isa::reg;

    #[test]
    fn sequential_for_alu() {
        let mut fe = FrontEnd::default();
        let p = fe.predict(10, Instr::alu_rr(Opcode::Addq, reg::R1, reg::R2, reg::R3));
        assert_eq!(p.next_pc, 11);
        assert!(!p.taken);
    }

    #[test]
    fn jsr_ret_pairing() {
        let mut fe = FrontEnd::default();
        assert_eq!(fe.call_depth(), 0);
        let p = fe.predict(5, Instr::jsr(100));
        assert_eq!(p.next_pc, 100);
        assert_eq!(fe.call_depth(), 1);
        let p = fe.predict(107, Instr::ret());
        assert_eq!(p.next_pc, 6, "RAS predicts the return target");
        assert_eq!(fe.call_depth(), 0);
    }

    #[test]
    fn call_depth_tracks_nesting() {
        let mut fe = FrontEnd::default();
        fe.predict(0, Instr::jsr(10));
        fe.predict(10, Instr::jsr(20));
        fe.predict(20, Instr::jsr(30));
        assert_eq!(fe.call_depth(), 3);
    }

    #[test]
    fn repair_restores_ras_and_history() {
        let mut fe = FrontEnd::default();
        fe.predict(0, Instr::jsr(10)); // depth 1
        let br = Instr::cond_branch(Opcode::Beq, reg::R1, 50);
        let p = fe.predict(10, br);
        fe.predict(p.next_pc, Instr::jsr(60)); // wrong-path call
        assert_eq!(fe.call_depth(), 2);
        fe.repair(p.checkpoint, Some(!p.taken));
        assert_eq!(fe.call_depth(), 1, "wrong-path push undone");
    }

    #[test]
    fn predictor_learns_a_loop_branch() {
        let mut fe = FrontEnd::default();
        let br = Instr::cond_branch(Opcode::Bne, reg::R1, 3);
        // Train: always taken.
        for _ in 0..64 {
            let p = fe.predict(7, br);
            fe.resolve_cond(7, p.checkpoint, true);
        }
        let p = fe.predict(7, br);
        assert!(p.taken, "a monotone branch becomes predicted-taken");
        assert_eq!(p.next_pc, 3);
    }

    #[test]
    fn btb_learns_targets() {
        let mut fe = FrontEnd::default();
        assert!(!fe.btb_hit(7));
        let br = Instr::cond_branch(Opcode::Bne, reg::R1, 3);
        fe.predict(7, br);
        assert!(fe.btb_hit(7));
    }
}
