//! The hybrid gshare/bimodal conditional-branch predictor.
//!
//! The paper's machine uses an "8K-entry hybrid gshare/bimodal branch
//! predictor" (§3.1). We implement the classic McFarling combining
//! predictor: an 8K-entry bimodal table of 2-bit counters, an 8K-entry
//! gshare table (global history XOR PC), and an 8K-entry chooser table of
//! 2-bit counters trained towards whichever component was correct.

use rix_isa::InstAddr;

/// Sizes of the three component tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Entries in the bimodal table (power of two).
    pub bimodal_entries: usize,
    /// Entries in the gshare table (power of two).
    pub gshare_entries: usize,
    /// Entries in the chooser table (power of two).
    pub chooser_entries: usize,
    /// Bits of global history used by gshare.
    pub history_bits: u32,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            bimodal_entries: 8192,
            gshare_entries: 8192,
            chooser_entries: 8192,
            history_bits: 13,
        }
    }
}

impl PredictorConfig {
    /// The field names [`PredictorConfig::apply_json`] accepts.
    pub const KEYS: &'static [&'static str] =
        &["bimodal_entries", "gshare_entries", "chooser_entries", "history_bits"];

    /// Checks that the tables can actually be built
    /// ([`HybridPredictor::new`] would panic otherwise): power-of-two
    /// table sizes and a history width the shift math can represent.
    pub fn validate(&self) -> Result<(), String> {
        for (name, n) in [
            ("bimodal_entries", self.bimodal_entries),
            ("gshare_entries", self.gshare_entries),
            ("chooser_entries", self.chooser_entries),
        ] {
            if !n.is_power_of_two() {
                return Err(format!("{name} must be a non-zero power of two (got {n})"));
            }
        }
        if !(1..=63).contains(&self.history_bits) {
            return Err(format!("history_bits must be 1-63 (got {})", self.history_bits));
        }
        Ok(())
    }

    /// Serialises the table sizes as a JSON object (every field, stable
    /// key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"bimodal_entries":{},"gshare_entries":{},"chooser_entries":{},"history_bits":{}}}"#,
            self.bimodal_entries, self.gshare_entries, self.chooser_entries, self.history_bits
        )
    }

    /// Applies a (possibly partial) JSON object: present keys overwrite,
    /// omitted keys keep their current value, unknown keys are rejected
    /// with an error naming them.
    pub fn apply_json(&mut self, v: &rix_isa::json::Json) -> Result<(), String> {
        use rix_isa::json::expect_u64;
        let rix_isa::json::Json::Obj(fields) = v else {
            return Err("predictor config must be a JSON object".to_string());
        };
        for (k, val) in fields {
            match k.as_str() {
                "bimodal_entries" => self.bimodal_entries = expect_u64(k, val)? as usize,
                "gshare_entries" => self.gshare_entries = expect_u64(k, val)? as usize,
                "chooser_entries" => self.chooser_entries = expect_u64(k, val)? as usize,
                "history_bits" => self.history_bits = expect_u64(k, val)? as u32,
                other => return Err(rix_isa::json::unknown_key(other, Self::KEYS)),
            }
        }
        Ok(())
    }
}

#[inline]
fn counter_up(c: &mut u8) {
    *c = (*c + 1).min(3);
}

#[inline]
fn counter_down(c: &mut u8) {
    *c = c.saturating_sub(1);
}

#[inline]
fn counter_taken(c: u8) -> bool {
    c >= 2
}

/// McFarling-style combining predictor with speculative global history.
#[derive(Clone, Debug)]
pub struct HybridPredictor {
    cfg: PredictorConfig,
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    chooser: Vec<u8>, // 0..=1: prefer bimodal, 2..=3: prefer gshare
    history: u64,
    lookups: u64,
}

impl HybridPredictor {
    /// Builds a predictor; counters start weakly not-taken / no
    /// preference.
    ///
    /// # Panics
    ///
    /// Panics if any table size is not a power of two.
    #[must_use]
    pub fn new(cfg: PredictorConfig) -> Self {
        for (name, n) in [
            ("bimodal", cfg.bimodal_entries),
            ("gshare", cfg.gshare_entries),
            ("chooser", cfg.chooser_entries),
        ] {
            assert!(n.is_power_of_two(), "{name} table size must be a power of two");
        }
        Self {
            cfg,
            bimodal: vec![1; cfg.bimodal_entries],
            gshare: vec![1; cfg.gshare_entries],
            chooser: vec![2; cfg.chooser_entries],
            history: 0,
            lookups: 0,
        }
    }

    /// Current (speculative) global history.
    #[must_use]
    pub fn history(&self) -> u64 {
        self.history
    }

    /// Restores history after a squash. When `corrected` is given, the
    /// squashing branch's true outcome is shifted in (the branch itself
    /// was not squashed, only everything younger).
    pub fn set_history(&mut self, history: u64, corrected: Option<bool>) {
        self.history = history;
        if let Some(taken) = corrected {
            self.shift_history(taken);
        }
    }

    fn shift_history(&mut self, taken: bool) {
        let mask = (1u64 << self.cfg.history_bits) - 1;
        self.history = ((self.history << 1) | u64::from(taken)) & mask;
    }

    fn indices(&self, pc: InstAddr, history: u64) -> (usize, usize, usize) {
        let b = (pc as usize) & (self.cfg.bimodal_entries - 1);
        let g = ((pc ^ history) as usize) & (self.cfg.gshare_entries - 1);
        let c = (pc as usize) & (self.cfg.chooser_entries - 1);
        (b, g, c)
    }

    /// Predicts the branch at `pc` and speculatively shifts the predicted
    /// direction into the global history.
    pub fn predict_and_update(&mut self, pc: InstAddr) -> bool {
        self.lookups += 1;
        let (b, g, c) = self.indices(pc, self.history);
        let bim = counter_taken(self.bimodal[b]);
        let gsh = counter_taken(self.gshare[g]);
        let taken = if counter_taken(self.chooser[c]) { gsh } else { bim };
        self.shift_history(taken);
        taken
    }

    /// Trains the tables with the resolved outcome. `history` must be the
    /// history the prediction was made with (from the checkpoint).
    pub fn train(&mut self, pc: InstAddr, history: u64, taken: bool) {
        let (b, g, c) = self.indices(pc, history);
        let bim_correct = counter_taken(self.bimodal[b]) == taken;
        let gsh_correct = counter_taken(self.gshare[g]) == taken;
        // Chooser moves toward the component that was right (when they
        // disagree).
        match (bim_correct, gsh_correct) {
            (true, false) => counter_down(&mut self.chooser[c]),
            (false, true) => counter_up(&mut self.chooser[c]),
            _ => {}
        }
        if taken {
            counter_up(&mut self.bimodal[b]);
            counter_up(&mut self.gshare[g]);
        } else {
            counter_down(&mut self.bimodal[b]);
            counter_down(&mut self.gshare[g]);
        }
    }

    /// Number of predictions made.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HybridPredictor {
        HybridPredictor::new(PredictorConfig {
            bimodal_entries: 64,
            gshare_entries: 64,
            chooser_entries: 64,
            history_bits: 6,
        })
    }

    #[test]
    fn learns_always_taken() {
        let mut p = tiny();
        for _ in 0..16 {
            let h = p.history();
            p.predict_and_update(5);
            p.train(5, h, true);
        }
        assert!(p.predict_and_update(5));
    }

    #[test]
    fn learns_always_not_taken() {
        let mut p = tiny();
        for _ in 0..16 {
            let h = p.history();
            p.predict_and_update(9);
            p.train(9, h, false);
        }
        assert!(!p.predict_and_update(9));
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        // A strict T/N/T/N pattern is hopeless for bimodal but trivial
        // for gshare once the chooser swings over.
        let mut p = tiny();
        let mut correct = 0;
        let mut outcome = false;
        for i in 0..400 {
            let h = p.history();
            let pred = p.predict_and_update(3);
            if pred == outcome && i >= 200 {
                correct += 1;
            }
            p.train(3, h, outcome);
            if pred != outcome {
                // Mispredictions repair speculative history, as the
                // pipeline does on a squash.
                p.set_history(h, Some(outcome));
            }
            outcome = !outcome;
        }
        assert!(correct > 180, "late-phase accuracy {correct}/200");
    }

    #[test]
    fn history_masked_to_width() {
        let mut p = tiny();
        for _ in 0..100 {
            p.predict_and_update(1);
        }
        assert!(p.history() < (1 << 6));
    }

    #[test]
    fn set_history_with_correction() {
        let mut p = tiny();
        p.set_history(0b101, Some(true));
        assert_eq!(p.history(), 0b1011);
        p.set_history(0b101, None);
        assert_eq!(p.history(), 0b101);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        let _ = HybridPredictor::new(PredictorConfig {
            bimodal_entries: 100,
            ..PredictorConfig::default()
        });
    }
}
