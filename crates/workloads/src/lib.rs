//! # rix-workloads: synthetic SPEC2000 integer stand-ins
//!
//! The paper evaluates on the SPEC2000 integer benchmarks compiled for
//! Alpha EV6. Those binaries (and their inputs) are not redistributable,
//! so this crate provides **16 synthetic RIX-ISA kernels**, one per
//! benchmark point the paper reports (`bzip2` … `vpr.r`), generated from
//! seeded parameter sets that encode what the paper says about each
//! program's behaviour:
//!
//! * **call intensity and depth** — drives opcode/call-depth indexing and
//!   reverse integration (crafty, eon, gap, gcc, perl, vortex),
//! * **save/restore density** — register fills and restores are the
//!   reverse-integration target (§2.4),
//! * **un-hoisted loop invariants and program-constant computation** —
//!   the general-reuse fodder named in §2.2,
//! * **twin static instructions** within one function — what opcode
//!   indexing integrates that PC indexing cannot (§2.3: crafty, perl.s,
//!   vortex gain ~10%),
//! * **aliasing same-shape operations at shallow call depth** — what
//!   makes opcode indexing *lose* integrations in call-poor programs
//!   (§3.2: gzip, vpr.r, and to a lesser degree bzip2, parser),
//! * **branch entropy** — reconvergent hammocks with data-dependent
//!   conditions feed squash reuse,
//! * **memory footprint and pointer chasing** — mcf's cache-miss-bound
//!   behaviour limits its relative speedup,
//! * **load/store density** — eon's 45% memory-operation mix is why it is
//!   hit hardest by losing a memory port (§3.5).
//!
//! Each benchmark is deterministic given its seed; the integration rate
//! of a synthetic kernel, like that of a real program, is "a pure
//! function of the program and the integration configuration" (§3.2).
//!
//! ```
//! use rix_workloads::{all_benchmarks, by_name};
//!
//! assert_eq!(all_benchmarks().len(), 16);
//! let vortex = by_name("vortex").expect("known benchmark");
//! let program = vortex.build(7);
//! assert!(program.len() > 100);
//! ```

pub mod gen;
pub mod spec;

pub use gen::build_program;
pub use spec::Spec;

use rix_isa::Program;

/// A named benchmark: a parameter set plus its provenance notes.
#[derive(Clone, Copy, Debug)]
pub struct Benchmark {
    /// The SPEC2000 point this kernel stands in for (e.g. `"eon.k"`).
    pub name: &'static str,
    /// What the paper says about this program, i.e. what the parameters
    /// encode.
    pub notes: &'static str,
    /// Generator parameters.
    pub spec: Spec,
}

impl Benchmark {
    /// Generates the program deterministically from `seed`.
    #[must_use]
    pub fn build(&self, seed: u64) -> Program {
        build_program(&self.spec, seed)
    }
}

/// All 16 benchmark points, in the paper's figure order.
#[must_use]
pub fn all_benchmarks() -> Vec<Benchmark> {
    spec::all()
}

/// Looks up a benchmark by name (`"gcc"`, `"vpr.r"`, …), ignoring ASCII
/// case. Use [`lookup`] for an error path that suggests close names.
#[must_use]
pub fn by_name(name: &str) -> Option<Benchmark> {
    spec::all().into_iter().find(|b| b.name.eq_ignore_ascii_case(name))
}

/// Like [`by_name`], but a miss produces an error message naming the
/// closest benchmarks (by edit distance) instead of a silent `None`.
pub fn lookup(name: &str) -> Result<Benchmark, String> {
    by_name(name).ok_or_else(|| {
        format!(
            "unknown benchmark `{name}` (closest matches: {}; see `all_benchmarks`)",
            closest_names(name, 3).join(", ")
        )
    })
}

/// The `k` benchmark names closest to `name` by case-insensitive edit
/// distance, ties broken by figure order.
#[must_use]
pub fn closest_names(name: &str, k: usize) -> Vec<&'static str> {
    let needle = name.to_ascii_lowercase();
    let mut scored: Vec<(usize, usize, &'static str)> = all_benchmarks()
        .iter()
        .enumerate()
        .map(|(i, b)| (edit_distance(&needle, b.name), i, b.name))
        .collect();
    scored.sort_unstable();
    scored.into_iter().take(k).map(|(_, _, n)| n).collect()
}

/// Levenshtein distance (benchmark names are short, the quadratic DP is
/// plenty).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_points() {
        let names: Vec<_> = all_benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "bzip2", "crafty", "eon.c", "eon.k", "eon.r", "gap", "gcc", "gzip", "mcf",
                "parser", "perl.d", "perl.s", "twolf", "vortex", "vpr.p", "vpr.r",
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("mcf").is_some());
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(by_name("MCF").unwrap().name, "mcf");
        assert_eq!(by_name("Vpr.R").unwrap().name, "vpr.r");
        assert_eq!(lookup("GCC").unwrap().name, "gcc");
    }

    #[test]
    fn lookup_miss_suggests_closest() {
        let err = lookup("vortx").unwrap_err();
        assert!(err.contains("unknown benchmark `vortx`"), "{err}");
        assert!(err.contains("vortex"), "{err}");
        let err = lookup("perl").unwrap_err();
        assert!(err.contains("perl.d") || err.contains("perl.s"), "{err}");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(closest_names("gc", 1), vec!["gcc"]);
    }

    #[test]
    fn deterministic() {
        let b = by_name("gcc").unwrap();
        assert_eq!(b.build(3), b.build(3));
        assert_ne!(b.build(3), b.build(4), "seed changes the program");
    }
}
