//! The program generator.
//!
//! Turns a [`Spec`] into a runnable [`Program`] with a fixed overall
//! shape: an initialisation block, an effectively-endless outer loop
//! (the measurement interval), a set of callable functions with
//! ABI-conformant prologues/epilogues, and an initialised data image.
//!
//! Register plan (stable registers are written once in init and never
//! again — their physical registers survive the whole run, which is what
//! makes repeated computations on them integration candidates):
//!
//! | registers | role |
//! |-----------|------|
//! | `r0`      | running checksum / return value |
//! | `r1`      | xorshift RNG state (data-dependent branch source) |
//! | `r2`      | outer loop counter |
//! | `r3`–`r8`, `r22` | scratch |
//! | `s0`–`s5` (`r9`–`r14`) | callee-saved locals (save/restore fodder) |
//! | `r15`     | stable base of array region A (read-only first page) |
//! | `r27`, `r28` | extra rotating accumulators |
//! | `r19`     | stable base of array region B (read/write) |
//! | `r20`     | pointer-chase cursor |
//! | `r21`     | array walk cursor |
//! | `r23`–`r25` | stable derived constants |

use crate::spec::Spec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rix_isa::{reg, Asm, LogReg, Program};

/// Base address of the read-mostly array region A.
pub const BASE_A: u64 = 0x0010_0000;
/// Base address of the read/write array region B.
pub const BASE_B: u64 = 0x0100_0000;
/// Base address of the pointer-chase node arena.
pub const CHASE_BASE: u64 = 0x0200_0000;

const R0: LogReg = reg::V0;
const RNG: LogReg = reg::R1;
const OUTER: LogReg = reg::R2;
const T3: LogReg = reg::R3;
const T4: LogReg = reg::R4;
const T5: LogReg = reg::R5;
const T6: LogReg = reg::R6;
const T7: LogReg = LogReg::int(7);
const T8: LogReg = LogReg::int(8);
const T22: LogReg = LogReg::int(22);
const BASEA: LogReg = reg::FP; // r15
const BASEB: LogReg = LogReg::int(19);
const CHASE: LogReg = LogReg::int(20);
const WALK: LogReg = LogReg::int(21);
const STABLE: [LogReg; 3] = [LogReg::int(23), LogReg::int(24), LogReg::int(25)];
/// Rotating accumulators: using several keeps the checksum from
/// serialising every operation behind one register chain.
const ACCS: [LogReg; 3] = [reg::V0, LogReg::int(27), LogReg::int(28)];

/// Deterministically generates the program for `spec` from `seed`.
#[must_use]
pub fn build_program(spec: &Spec, seed: u64) -> Program {
    Gen::new(spec, seed).build()
}

struct Gen<'s> {
    spec: &'s Spec,
    rng: StdRng,
    a: Asm,
    label_n: usize,
    acc_n: usize,
}

impl<'s> Gen<'s> {
    fn new(spec: &'s Spec, seed: u64) -> Self {
        Self { spec, rng: StdRng::seed_from_u64(seed), a: Asm::new(), label_n: 0, acc_n: 0 }
    }

    fn fresh(&mut self, tag: &str) -> String {
        self.label_n += 1;
        format!("{tag}_{}", self.label_n)
    }

    /// The next accumulator, round-robin.
    fn acc(&mut self) -> LogReg {
        self.acc_n += 1;
        ACCS[self.acc_n % ACCS.len()]
    }

    /// `acc += r` into a rotating accumulator.
    fn accumulate(&mut self, r: LogReg) {
        let acc = self.acc();
        self.a.addq(acc, acc, r);
    }

    /// Number of root (depth-1) functions: the rest chain below them.
    fn roots(&self) -> usize {
        (self.spec.num_funcs / self.spec.nest_depth.max(1)).max(1)
    }

    /// An 8-byte-aligned displacement into the read-only first page of
    /// region A, drawn from the spec's immediate-diversity pool.
    fn ro_offset(&mut self) -> i32 {
        let pool = self.spec.imm_pool();
        let i = self.rng.random_range(0..pool.len());
        pool[i]
    }

    /// An ALU immediate. Compiled code draws constants from a huge space;
    /// only the low-diversity (call-poor) programs concentrate on a few
    /// values, which is what makes their opcode-indexed IT sets alias.
    fn alu_imm(&mut self) -> i32 {
        match self.spec.imm_diversity {
            crate::spec::ImmDiversity::Low => {
                let pool = self.spec.imm_pool();
                pool[self.rng.random_range(0..pool.len())]
            }
            crate::spec::ImmDiversity::High => self.rng.random_range(1..4096),
        }
    }

    fn build(mut self) -> Program {
        self.emit_init();
        self.emit_outer_loop();
        // Emit only the functions some call site actually reaches: the
        // roots the outer loop calls, closed under the fn_i → fn_{i+roots}
        // chain. Emitting the rest would assemble dead code that never
        // runs (rix-analysis flags it as RIX002 `unreachable-block`).
        for f in self.reachable_funcs() {
            self.emit_function(f);
        }
        if self.spec.recursion.is_some() {
            self.emit_recursive();
        }
        self.emit_data();
        self.a.assemble().expect("generated labels are consistent")
    }

    /// Function indices reachable from the outer loop's call sites,
    /// in emission (ascending) order. Mirrors [`Gen::emit_function`]'s
    /// `calls_next` chain rule exactly.
    fn reachable_funcs(&self) -> Vec<usize> {
        let s = self.spec;
        let roots = self.roots();
        let mut live = vec![false; s.num_funcs];
        if s.num_funcs > 0 {
            for c in 0..s.calls_per_iter {
                let mut idx = c % roots;
                while idx < s.num_funcs && !live[idx] {
                    live[idx] = true;
                    let my_depth = 1 + idx / roots;
                    if my_depth >= s.nest_depth {
                        break;
                    }
                    idx += roots;
                }
            }
        }
        (0..s.num_funcs).filter(|&i| live[i]).collect()
    }

    fn emit_init(&mut self) {
        let s = self.spec;
        let a = &mut self.a;
        // All rotating accumulators (r0 included) start at zero: they are
        // read-modify-written from the first body block on.
        for &acc in &ACCS {
            a.addq_i(acc, reg::ZERO, 0);
        }
        a.addq_i(RNG, reg::ZERO, (0x0025_450d ^ (s.num_funcs as i32) << 4) | 1);
        // Region bases are built with shifts so they exceed the 16-bit
        // immediate range idiomatically.
        a.addq_i(T3, reg::ZERO, 1);
        a.sll_i(BASEA, T3, 20); // 0x0010_0000
        a.sll_i(BASEB, T3, 24); // 0x0100_0000
        a.sll_i(CHASE, T3, 25); // 0x0200_0000
        a.addq_i(WALK, BASEA, 4096); // walks start past the read-only page
        // Stable derived constants.
        a.addq_i(STABLE[0], BASEA, 96);
        a.xor_i(STABLE[1], BASEB, 0x155);
        a.addq(STABLE[2], STABLE[0], STABLE[1]);
        // Callee-saved locals the functions will save/clobber/restore.
        for (i, &sr) in [reg::S0, reg::S1, reg::S2, reg::S3, reg::S4].iter().enumerate() {
            a.addq_i(sr, reg::ZERO, 11 * (i as i32 + 1));
        }
        // Caller-saved scratch: call sites spill these around every call,
        // so they must hold defined values before the first call site.
        for (i, &t) in [T7, T8, T22].iter().enumerate() {
            a.addq_i(t, reg::ZERO, 3 * (i as i32 + 1));
        }
        a.addq_i(OUTER, reg::ZERO, i32::MAX); // effectively endless
        a.label("outer");
    }

    fn emit_outer_loop(&mut self) {
        let s = *self.spec;
        // Aliasing ops: same opcode/immediate, distinct stable inputs,
        // at call depth 0. Reusable every iteration, but under opcode
        // indexing they all contend for one IT set.
        let alias_dsts = [T3, T4, T5, T6, T7, T8];
        for i in 0..s.aliasing_ops {
            let src = [BASEA, BASEB, STABLE[0], STABLE[1], STABLE[2], WALK][i % 6];
            let dst = alias_dsts[i % alias_dsts.len()];
            if i < 6 {
                self.a.addq_i(dst, src, 1);
            } else {
                self.a.xor_i(dst, src, 9);
            }
            self.accumulate(dst);
        }
        // Call block: sites share a few root functions (helpers are
        // called many times per iteration, like real call-intensive
        // code), and functions chain in a tree below the roots so every
        // function runs at one stable call depth — the dominant-call-path
        // structure that makes call-depth indexing effective (§2.3).
        let roots = self.roots();
        for c in 0..s.calls_per_iter {
            if s.num_funcs > 0 {
                self.emit_call_site(&format!("fn_{}", c % roots), 1);
            }
        }
        if let Some(depth) = s.recursion {
            self.a.addq_i(reg::A0, reg::ZERO, depth as i32);
            self.emit_call_site("fn_rec", 1);
        }
        // Inline kernel for the call-poor programs.
        self.emit_body(false);
        if s.pointer_chase {
            self.emit_chase();
        }
        self.emit_rng_step();
        self.a.subq_i(OUTER, OUTER, 1);
        self.a.bne(OUTER, "outer");
        self.a.halt();
    }

    /// A call with the caller-save idiom around it: `stq t, off(sp)` …
    /// `jsr` … `ldq t, off(sp)` — the §2.4 caller-saved bypassing case.
    /// `slot_base` is the first free 8-byte stack slot at the call site
    /// (above the enclosing frame's own save area).
    fn emit_call_site(&mut self, target: &str, slot_base: i32) {
        let s = *self.spec;
        let saved = [T7, T8, T22];
        let n = s.caller_saves.min(saved.len());
        for (i, &t) in saved.iter().take(n).enumerate() {
            self.a.stq(t, 8 * (slot_base + i as i32), reg::SP);
        }
        self.a.jsr(target);
        for (i, &t) in saved.iter().take(n).enumerate() {
            self.a.ldq(t, 8 * (slot_base + i as i32), reg::SP);
        }
        for &t in saved.iter().take(n) {
            self.accumulate(t);
        }
    }

    /// Function `fn_i`: ABI prologue (frame push + callee saves), a body,
    /// an optional nested call to `fn_{i+1}`, epilogue (restores + frame
    /// pop + ret).
    fn emit_function(&mut self, idx: usize) {
        let s = *self.spec;
        let saves = s.saves_per_func.min(5);
        // Tree call structure below the roots: fn_i calls fn_{i + roots};
        // each function therefore runs at the fixed depth 1 + i/roots.
        let roots = self.roots();
        let child = idx + roots;
        let my_depth = 1 + idx / roots;
        let calls_next = child < s.num_funcs && my_depth < s.nest_depth;
        // Frame: ra slot + callee saves + caller-save slots for our own
        // call sites (kept disjoint so restores restore what was saved).
        let caller_slots = if calls_next { s.caller_saves as i32 } else { 0 };
        let frame = 8 * (1 + saves as i32 + caller_slots + 1);
        let save_regs = [reg::S0, reg::S1, reg::S2, reg::S3, reg::S4];

        self.a.label(format!("fn_{idx}"));
        self.a.lda(reg::SP, -frame, reg::SP);
        self.a.stq(reg::RA, 0, reg::SP);
        for (i, &sr) in save_regs.iter().take(saves).enumerate() {
            self.a.stq(sr, 8 * (i as i32 + 1), reg::SP);
        }
        // Clobber the saved registers (so restores are semantically
        // necessary) with function-local computation.
        for (i, &sr) in save_regs.iter().take(saves).enumerate() {
            self.a.addq_i(sr, STABLE[i % 3], 7 * (idx as i32 + 1));
            self.accumulate(sr);
        }
        self.emit_body(true);
        if calls_next {
            self.emit_call_site(&format!("fn_{child}"), 1 + saves as i32);
        }
        // Epilogue: the restores reverse-integrate against the saves.
        for (i, &sr) in save_regs.iter().take(saves).enumerate() {
            self.a.ldq(sr, 8 * (i as i32 + 1), reg::SP);
        }
        self.a.ldq(reg::RA, 0, reg::SP);
        self.a.lda(reg::SP, frame, reg::SP);
        self.a.ret();
    }

    /// Bounded recursion (crafty's search-tree shape): saves `ra` and the
    /// depth argument each level, recurses, restores — the recursive
    /// save/restore chain §4 notes integration handles correctly.
    fn emit_recursive(&mut self) {
        self.a.label("fn_rec");
        self.a.lda(reg::SP, -16, reg::SP);
        self.a.stq(reg::RA, 0, reg::SP);
        self.a.stq(reg::A0, 8, reg::SP);
        self.a.beq(reg::A0, "rec_base");
        self.a.subq_i(reg::A0, reg::A0, 1);
        self.a.jsr("fn_rec");
        self.a.ldq(reg::A0, 8, reg::SP);
        self.a.addq(R0, R0, reg::A0);
        self.a.label("rec_base");
        self.a.ldq(reg::RA, 0, reg::SP);
        self.a.lda(reg::SP, 16, reg::SP);
        self.a.ret();
    }

    /// One body block: invariant chains, twin operations, redundant
    /// loads, an inner loop walking an array, hammocks, conflict pairs
    /// and FP work, mixed per the spec.
    fn emit_body(&mut self, in_function: bool) {
        let s = *self.spec;
        // Un-hoisted loop-invariant chain on stable inputs: re-executed
        // with identical physical inputs every visit (general reuse).
        let mut chain = T7;
        for i in 0..s.invariants {
            let base = STABLE[i % 3];
            let imm = self.alu_imm();
            if i == 0 {
                self.a.addq_i(chain, base, imm);
            } else {
                let next = if chain == T7 { T8 } else { T7 };
                self.a.xor_i(next, chain, imm);
                self.accumulate(next);
                chain = next;
            }
        }
        // Twin static instructions: identical shape at three PCs — only
        // opcode indexing lets the later copies integrate the first
        // (§2.3). Real analogues: repeated field-offset or constant
        // computations the compiler did not CSE across blocks.
        for i in 0..s.twin_ops {
            let imm = self.alu_imm();
            let base = STABLE[i % 3];
            self.a.addq_i(T5, base, imm);
            self.accumulate(T5);
            self.a.addq_i(T6, base, imm); // twin of the instruction above
            self.accumulate(T6);
            self.a.addq_i(T5, base, imm); // triplet
            self.accumulate(T5);
        }
        // Redundant loads from the read-only page of region A: repeated
        // instances produce load reuse without conflict hazards.
        for _ in 0..s.redundant_loads {
            let off = self.ro_offset();
            self.a.ldq(T4, off, BASEA);
            self.accumulate(T4);
        }
        // Reusable dependent load chains: an address computation feeding
        // a load feeding the next address — the "collapsing reused
        // dependence chains" effect. Fully integration-eligible, and a
        // long serial latency when executed.
        for _ in 0..s.chain_loads {
            let first = self.ro_offset();
            self.a.ldq(T4, first, BASEA);
            for _ in 0..2 {
                self.a.and_i(T5, T4, 4088); // mask into the read-only page
                self.a.addq(T6, T5, BASEA);
                self.a.ldq(T4, 0, T6);
            }
            self.accumulate(T4);
        }
        // Inner loop: strided walk with per-iteration invariants. The
        // walk restarts at a random offset inside the footprint each
        // visit and advances with a single-cycle recurrence, like a
        // compiled array loop.
        if s.inner_trip > 0 {
            let top = self.fresh("inner");
            let mask = (s.footprint_words * 8 - 8) as i32;
            self.a.and_i(T6, RNG, mask);
            self.a.addq(WALK, BASEA, T6);
            self.a.addq_i(WALK, WALK, 4096); // stay past the read-only page
            self.a.addq_i(T3, reg::ZERO, s.inner_trip as i32);
            // Walk-load displacements mimic compiled field offsets:
            // diverse 8-byte-aligned values, fixed per static site.
            let walk_disps: Vec<i32> =
                (0..s.walk_loads).map(|_| 8 * self.rng.random_range(0..64)).collect();
            let store_disps: Vec<i32> =
                (0..s.stores_per_body).map(|_| 8 * self.rng.random_range(0..32)).collect();
            self.a.label(top.clone());
            for &disp in &walk_disps {
                self.a.ldq(T4, disp, WALK);
                self.accumulate(T4);
            }
            for &disp in &store_disps {
                // Stores land in region B, away from the loads.
                self.a.stq(R0, disp, BASEB);
            }
            // Un-hoisted invariant inside the inner loop.
            let imm = self.alu_imm();
            self.a.addq_i(T5, STABLE[0], imm);
            self.accumulate(T5);
            // Advance the walk cursor (single-cycle recurrence).
            self.a.addq_i(WALK, WALK, (s.stride * 8) as i32);
            self.a.subq_i(T3, T3, 1);
            self.a.bne(T3, top);
        }
        // Reconvergent hammocks on RNG bits: mispredictions whose
        // squashed join-side instructions feed squash reuse.
        for h in 0..s.hammocks {
            let arm = self.fresh("arm");
            let join = self.fresh("join");
            let (imm_a, imm_b, imm_j) = (self.alu_imm(), self.alu_imm(), self.alu_imm());
            self.a.and_i(T4, RNG, s.hammock_mask as i32);
            self.a.beq(T4, arm.clone());
            self.a.addq_i(T5, STABLE[1], imm_a);
            self.a.br(join.clone());
            self.a.label(arm);
            self.a.addq_i(T5, STABLE[2], imm_b);
            self.a.label(join);
            // Join-side code shared by both paths (squash-reuse fodder).
            self.accumulate(T5);
            self.a.xor_i(T6, T5, imm_j);
            self.accumulate(T6);
            self.emit_rng_step();
            let _ = h;
        }
        // Conflict pairs: a store followed by a load of the same address
        // whose value changes every visit — load mis-integration fodder.
        for c in 0..s.conflict_pairs {
            let off = 8 * (c as i32 + 64);
            self.a.stq(R0, off, BASEB);
            self.a.ldq(T4, off, BASEB);
            self.accumulate(T4);
        }
        // Floating-point work on the read-only page.
        for f in 0..s.fp_ops {
            let off = 8 * (f as i32 % 8);
            self.a.ldq(reg::F0, off, BASEA);
            self.a.addt(reg::F1, reg::F0, reg::F0);
            self.a.mult(reg::F2, reg::F1, reg::F0);
        }
        let _ = in_function;
    }

    /// A few steps of dependent pointer chasing (mcf's dominant pattern).
    fn emit_chase(&mut self) {
        for _ in 0..4 {
            self.a.ldq(CHASE, 0, CHASE); // next = node.next
            self.a.ldq(T4, 8, CHASE); // value
            self.accumulate(T4);
        }
    }

    /// One xorshift64 step on the RNG register.
    fn emit_rng_step(&mut self) {
        self.a.sll_i(T22, RNG, 13);
        self.a.xor_(RNG, RNG, T22);
        self.a.srl_i(T22, RNG, 7);
        self.a.xor_(RNG, RNG, T22);
        self.a.sll_i(T22, RNG, 17);
        self.a.xor_(RNG, RNG, T22);
    }

    fn emit_data(&mut self) {
        let s = *self.spec;
        // Read-only page of region A: small constants the redundant
        // loads and FP ops consume.
        let ro: Vec<u64> = (0..512u64).map(|i| (i * 0x9e37_79b9) ^ 0x5bd1_e995).collect();
        self.a.data(BASE_A, ro);
        if s.pointer_chase {
            // A single random cycle over the node arena: node i holds
            // [next_ptr, value]. Sattolo's algorithm yields one cycle so
            // the chase never gets stuck in a short loop.
            let n = s.chase_nodes as usize;
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = self.rng.random_range(0..i);
                perm.swap(i, j);
            }
            let mut words = vec![0u64; n * 2];
            for i in 0..n {
                words[i * 2] = CHASE_BASE + (perm[i] as u64) * 16;
                words[i * 2 + 1] = (i as u64).wrapping_mul(0x1234_5677) & 0xffff;
            }
            self.a.data(CHASE_BASE, words);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use rix_isa::interp::{Interp, StopReason};

    #[test]
    fn every_benchmark_assembles() {
        for b in spec::all() {
            let p = b.build(1);
            assert!(p.len() > 50, "{} too small ({})", b.name, p.len());
            assert!(p.len() < 8192, "{} exceeds the I-cache working set", b.name);
        }
    }

    #[test]
    fn every_benchmark_runs_on_the_interpreter() {
        for b in spec::all() {
            let p = b.build(1);
            let mut i = Interp::new(&p, 0x0800_0000);
            let stop = i.run(50_000);
            assert_eq!(stop, StopReason::StepLimit, "{} must keep running", b.name);
            assert_eq!(i.reg(reg::SP) , 0x0800_0000 - sp_offset_ok(&mut i), "{}", b.name);
        }
    }

    // The stack pointer is either balanced (between calls) or inside a
    // frame (mid-call); accept any value above a sane floor.
    fn sp_offset_ok(i: &mut Interp) -> u64 {
        let sp = i.reg(reg::SP);
        assert!(sp <= 0x0800_0000 && sp > 0x0700_0000, "stack sane: {sp:#x}");
        0x0800_0000 - sp
    }

    #[test]
    fn chase_cycle_is_complete() {
        let b = crate::by_name("mcf").unwrap();
        let p = b.build(3);
        let seg = p
            .data_segments()
            .iter()
            .find(|s| s.base == CHASE_BASE)
            .expect("mcf has a chase arena");
        let n = seg.words.len() / 2;
        // Follow next pointers: must visit all n nodes before returning.
        let mut seen = vec![false; n];
        let mut cur = 0usize;
        for _ in 0..n {
            assert!(!seen[cur], "premature cycle");
            seen[cur] = true;
            let next = seg.words[cur * 2];
            cur = ((next - CHASE_BASE) / 16) as usize;
        }
        assert_eq!(cur, 0, "single full cycle");
    }

    #[test]
    fn checksums_differ_across_benchmarks() {
        // Distinct specs must generate behaviourally distinct programs.
        let mut sums = std::collections::HashSet::new();
        for b in spec::all() {
            let p = b.build(1);
            let mut i = Interp::new(&p, 0x0800_0000);
            i.run(20_000);
            sums.insert((i.reg(R0), i.steps(), p.len()));
        }
        assert!(sums.len() >= 14, "benchmarks are distinct: {}", sums.len());
    }
}
