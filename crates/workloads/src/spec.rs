//! Per-benchmark generator parameters.
//!
//! Each [`Spec`] encodes what §3 of the paper reports about the
//! corresponding SPEC2000int program: call structure, save/restore
//! density, reuse fodder, branch entropy, and memory behaviour. The
//! constants here are the calibration knobs for the reproduction — they
//! were chosen so the *relative* behaviour across benchmarks matches the
//! paper's descriptions (which programs are call-intensive, which are
//! hurt by opcode indexing, which are memory-bound), not to match any
//! absolute number.

use crate::Benchmark;

/// Immediate-value diversity of the generated code.
///
/// Call-poor programs with [`ImmDiversity::Low`] concentrate on a few
/// opcode/immediate shapes, which is exactly what makes opcode-indexed
/// integration tables conflict (§3.2: gzip and vpr.r lose ~5% integration
/// rate under opcode indexing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImmDiversity {
    /// A handful of immediates (`0`, `8`, `16`) — IT sets alias heavily.
    Low,
    /// A broad pool of immediates — IT sets spread well.
    High,
}

/// Generator parameters for one benchmark point.
#[derive(Clone, Copy, Debug)]
pub struct Spec {
    /// Distinct callable functions.
    pub num_funcs: usize,
    /// Maximum call-nesting depth below `main` (functions chain-call).
    pub nest_depth: usize,
    /// Callee-saved registers saved/restored per function (0–5).
    pub saves_per_func: usize,
    /// Caller-saved slots spilled around each call site (0–3).
    pub caller_saves: usize,
    /// Call sites per outer-loop iteration.
    pub calls_per_iter: usize,
    /// Inner-loop trip count.
    pub inner_trip: u32,
    /// Un-hoisted loop-invariant chain length per body.
    pub invariants: usize,
    /// Twin (duplicated-shape) static instruction pairs per body —
    /// integration across different PCs, the §2.3 opcode-indexing win.
    pub twin_ops: usize,
    /// Same-shape, distinct-input operations at call depth 0 — the
    /// opcode-indexing conflict loss.
    pub aliasing_ops: usize,
    /// Data-dependent reconvergent hammocks per body.
    pub hammocks: usize,
    /// RNG mask for hammock conditions (1 = 50/50, 3 = 25/75, …).
    pub hammock_mask: u32,
    /// Fixed-address loads per body (load reuse fodder).
    pub redundant_loads: usize,
    /// Strided loads per inner-loop iteration.
    pub walk_loads: usize,
    /// Stores per inner-loop iteration.
    pub stores_per_body: usize,
    /// Same-address store→load pairs per body (mis-integration fodder).
    pub conflict_pairs: usize,
    /// Reusable dependent load chains per body (address computation
    /// feeding a load feeding the next address).
    pub chain_loads: usize,
    /// Floating-point operation triples per body.
    pub fp_ops: usize,
    /// Array-walk footprint in 64-bit words (power of two).
    pub footprint_words: u64,
    /// Walk stride in words.
    pub stride: u64,
    /// Whether the outer loop chases a pointer cycle (mcf).
    pub pointer_chase: bool,
    /// Nodes in the chase arena (power of two).
    pub chase_nodes: u64,
    /// Bounded recursion depth, if the benchmark recurses (crafty).
    pub recursion: Option<u32>,
    /// Immediate diversity.
    pub imm_diversity: ImmDiversity,
}

impl Spec {
    /// The displacement/immediate pool this spec draws from.
    #[must_use]
    pub fn imm_pool(&self) -> &'static [i32] {
        match self.imm_diversity {
            ImmDiversity::Low => &[0, 8, 16],
            ImmDiversity::High => &[
                0, 8, 16, 24, 32, 48, 56, 72, 96, 104, 128, 152, 200, 248, 320, 392, 440, 488,
            ],
        }
    }
}

/// A call-poor, loop-dominated kernel (the bzip2/gzip/vpr family).
const fn loop_kernel() -> Spec {
    Spec {
        num_funcs: 2,
        nest_depth: 1,
        saves_per_func: 1,
        caller_saves: 0,
        calls_per_iter: 1,
        inner_trip: 12,
        invariants: 4,
        twin_ops: 0,
        aliasing_ops: 10,
        hammocks: 2,
        hammock_mask: 7, // ~12.5% taken: SPEC-like conditional entropy
        redundant_loads: 2,
        walk_loads: 2,
        stores_per_body: 1,
        conflict_pairs: 1,
        chain_loads: 1,
        fp_ops: 0,
        footprint_words: 1 << 12, // 32 KB: L1-resident after warmup
        stride: 5,
        pointer_chase: false,
        chase_nodes: 0,
        recursion: None,
        imm_diversity: ImmDiversity::Low,
    }
}

/// A call-intensive program with deep call graph and full ABI traffic
/// (the gcc/gap/perl/vortex family).
const fn call_intensive() -> Spec {
    Spec {
        num_funcs: 8,
        nest_depth: 5,
        saves_per_func: 3,
        caller_saves: 1,
        calls_per_iter: 3,
        inner_trip: 3,
        invariants: 3,
        twin_ops: 1,
        aliasing_ops: 0,
        hammocks: 2,
        hammock_mask: 7, // ~12.5% taken: SPEC-like conditional entropy
        redundant_loads: 2,
        walk_loads: 1,
        stores_per_body: 1,
        conflict_pairs: 0,
        chain_loads: 1,
        fp_ops: 0,
        footprint_words: 1 << 12, // 32 KB: mostly cache-resident
        stride: 3,
        pointer_chase: false,
        chase_nodes: 0,
        recursion: None,
        imm_diversity: ImmDiversity::High,
    }
}

/// All 16 benchmark points, in the paper's figure order.
#[must_use]
pub fn all() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "bzip2",
            notes: "call-poor block compressor: loop-dominated, moderate aliasing, \
                    mildly hurt by opcode indexing (§3.2)",
            spec: Spec {
                aliasing_ops: 6,
                inner_trip: 16,
                invariants: 5,
                footprint_words: 1 << 13, // 64 KB: some L1 misses
                ..loop_kernel()
            },
        },
        Benchmark {
            name: "crafty",
            notes: "recursive game-tree search: call-intensive, twin static \
                    instructions within functions (+~10% from opcode indexing), \
                    high direct mis-integration rate from conflict pairs",
            spec: Spec {
                twin_ops: 6,
                conflict_pairs: 2,
                recursion: Some(10),
                num_funcs: 10,
                nest_depth: 5,
                calls_per_iter: 3,
                saves_per_func: 4,
                caller_saves: 2,
                invariants: 2,
                ..call_intensive()
            },
        },
        Benchmark {
            name: "eon.c",
            notes: "C++ ray tracer (cook input): 45% loads+stores, small leaf \
                    functions, FP work — hit hardest by losing a memory port (§3.5)",
            spec: Spec {
                num_funcs: 10,
                calls_per_iter: 4,
                saves_per_func: 4,
                caller_saves: 2,
                walk_loads: 3,
                stores_per_body: 2,
                redundant_loads: 4,
                fp_ops: 2,
                inner_trip: 2,
                invariants: 2,
                ..call_intensive()
            },
        },
        Benchmark {
            name: "eon.k",
            notes: "eon, kajiya input: as eon.c with a deeper call chain",
            spec: Spec {
                num_funcs: 10,
                nest_depth: 6,
                calls_per_iter: 4,
                saves_per_func: 4,
                caller_saves: 2,
                walk_loads: 3,
                stores_per_body: 2,
                redundant_loads: 3,
                fp_ops: 2,
                inner_trip: 3,
                ..call_intensive()
            },
        },
        Benchmark {
            name: "eon.r",
            notes: "eon, rushmeier input: as eon.c with more FP and fewer calls",
            spec: Spec {
                num_funcs: 9,
                calls_per_iter: 3,
                saves_per_func: 4,
                caller_saves: 2,
                walk_loads: 3,
                stores_per_body: 2,
                redundant_loads: 3,
                fp_ops: 3,
                inner_trip: 4,
                ..call_intensive()
            },
        },
        Benchmark {
            name: "gap",
            notes: "group-theory interpreter: call-intensive, reverse integration \
                    near 10% (§3.2)",
            spec: Spec { num_funcs: 7, calls_per_iter: 3, saves_per_func: 3, ..call_intensive() },
        },
        Benchmark {
            name: "gcc",
            notes: "compiler: deep call graph, branchy, large instruction working \
                    set; strong reverse integration",
            spec: Spec {
                num_funcs: 12,
                nest_depth: 7,
                calls_per_iter: 4,
                hammocks: 3,
                saves_per_func: 4,
                caller_saves: 1,
                twin_ops: 1,
                invariants: 2,
                ..call_intensive()
            },
        },
        Benchmark {
            name: "gzip",
            notes: "call-poor LZ77 compressor: few integration opportunities \
                    across static instructions, few calls — opcode indexing's \
                    conflict loss dominates (§3.2: rate drops ~5%)",
            spec: Spec {
                aliasing_ops: 12,
                inner_trip: 16,
                calls_per_iter: 0,
                num_funcs: 1,
                hammocks: 2,
                ..loop_kernel()
            },
        },
        Benchmark {
            name: "mcf",
            notes: "network-flow solver: pointer chasing over a 2 MB arena — \
                    execution time dominated by cache misses, so integration's \
                    relative benefit is smallest (§3.2)",
            spec: Spec {
                pointer_chase: true,
                chase_nodes: 1 << 17, // 128K nodes × 16 B = 2 MB
                inner_trip: 2,
                walk_loads: 1,
                calls_per_iter: 1,
                num_funcs: 2,
                invariants: 1,
                aliasing_ops: 2,
                redundant_loads: 1,
                chain_loads: 0,
                footprint_words: 1 << 16,
                stride: 67,
                ..loop_kernel()
            },
        },
        Benchmark {
            name: "parser",
            notes: "link-grammar parser: moderate calls, mildly hurt by opcode \
                    indexing (§3.2)",
            spec: Spec {
                num_funcs: 4,
                nest_depth: 3,
                calls_per_iter: 2,
                aliasing_ops: 6,
                saves_per_func: 2,
                inner_trip: 6,
                imm_diversity: ImmDiversity::Low,
                ..call_intensive()
            },
        },
        Benchmark {
            name: "perl.d",
            notes: "perl, diffmail input: dispatch loop plus helper calls",
            spec: Spec {
                num_funcs: 9,
                calls_per_iter: 3,
                hammocks: 3,
                saves_per_func: 3,
                ..call_intensive()
            },
        },
        Benchmark {
            name: "perl.s",
            notes: "perl, splitmail input: like perl.d with twin static \
                    instructions (+~10% from opcode indexing, §3.2)",
            spec: Spec {
                num_funcs: 12,
                nest_depth: 6,
                calls_per_iter: 4,
                twin_ops: 5,
                saves_per_func: 4,
                caller_saves: 2,
                invariants: 2,
                ..call_intensive()
            },
        },
        Benchmark {
            name: "twolf",
            notes: "place-and-route: moderate in every dimension, some FP",
            spec: Spec {
                num_funcs: 5,
                nest_depth: 3,
                calls_per_iter: 2,
                inner_trip: 8,
                fp_ops: 1,
                saves_per_func: 2,
                footprint_words: 1 << 14,
                ..call_intensive()
            },
        },
        Benchmark {
            name: "vortex",
            notes: "OO database: the most call- and save/restore-dense point; \
                    opcode indexing +~10%, reverse integration ~10% (§3.2)",
            spec: Spec {
                num_funcs: 12,
                nest_depth: 6,
                calls_per_iter: 5,
                saves_per_func: 5,
                caller_saves: 2,
                twin_ops: 4,
                inner_trip: 1,
                invariants: 2,
                redundant_loads: 1,
                walk_loads: 1,
                ..call_intensive()
            },
        },
        Benchmark {
            name: "vpr.p",
            notes: "FPGA placement: loop kernel with annealing-style hammocks",
            spec: Spec {
                inner_trip: 10,
                hammocks: 3,
                aliasing_ops: 8,
                fp_ops: 1,
                footprint_words: 1 << 14,
                ..loop_kernel()
            },
        },
        Benchmark {
            name: "vpr.r",
            notes: "FPGA routing: call-poor, heavy same-shape aliasing — opcode \
                    indexing's biggest loser (§3.2)",
            spec: Spec {
                aliasing_ops: 12,
                inner_trip: 14,
                calls_per_iter: 0,
                num_funcs: 1,
                footprint_words: 1 << 13,
                stride: 7,
                ..loop_kernel()
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_well_formed() {
        for b in all() {
            let s = b.spec;
            assert!(s.footprint_words.is_power_of_two(), "{}", b.name);
            assert!(s.saves_per_func <= 5, "{}", b.name);
            assert!(s.caller_saves <= 3, "{}", b.name);
            if s.pointer_chase {
                assert!(s.chase_nodes.is_power_of_two(), "{}", b.name);
            }
            assert!(!s.imm_pool().is_empty());
        }
    }

    #[test]
    fn families_differ_where_the_paper_says() {
        let gzip = all().into_iter().find(|b| b.name == "gzip").unwrap();
        let vortex = all().into_iter().find(|b| b.name == "vortex").unwrap();
        let mcf = all().into_iter().find(|b| b.name == "mcf").unwrap();
        // Call-poor vs call-dense.
        assert!(gzip.spec.calls_per_iter < vortex.spec.calls_per_iter);
        assert!(gzip.spec.aliasing_ops > vortex.spec.aliasing_ops);
        assert!(vortex.spec.saves_per_func > gzip.spec.saves_per_func);
        // Memory-bound point.
        assert!(mcf.spec.pointer_chase);
        assert_eq!(mcf.spec.chase_nodes * 16, 2 << 20, "2 MB arena");
    }
}
