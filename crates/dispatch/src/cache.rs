//! The content-addressed trial cache (`--cache DIR`).
//!
//! One file per cell result, named by the 128-bit content hash of the
//! cell's *descriptor* (everything that determines the result:
//! benchmark, seed, config, budgets, warm-up provenance — built by the
//! caller, hashed with [`crate::hash::fnv128_hex`]). Entries are
//! `rix-trial-cache/1` JSON documents written atomically (temp file in
//! the cache directory, then `rename`), so a reader never observes a
//! torn entry and concurrent writers of the same key converge on one
//! winner with identical content.
//!
//! The cache is **forgiving on read, strict on write**: any unreadable,
//! unparsable, truncated or mismatched entry is a miss — the cell is
//! simply re-simulated and the entry rewritten — never an error. A
//! cache can be deleted, rsynced, or half-written by a crashed run
//! without poisoning anything.

use crate::hash::fnv128_hex;
use rix_isa::json::Json;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::{Duration, SystemTime};

/// The on-disk entry schema.
pub const CACHE_SCHEMA: &str = "rix-trial-cache/1";

/// Aggregate statistics over a cache directory's committed entries —
/// what `exp cache stats` reports for a long-lived service cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries that pass the full load checks (schema, recorded key).
    pub entries: usize,
    /// `*.json` files that fail them — unparsable, truncated, wrong
    /// schema, or filed under the wrong key. Read as misses at lookup
    /// time; counted here so an operator can see rot.
    pub corrupt: usize,
    /// Total size of all `*.json` entry files, valid and corrupt.
    pub bytes: u64,
}

/// When this process started, captured once — the stale-temp-file
/// cutoff. A temp file older than this cannot belong to a live write of
/// ours, and a concurrent writer's temp file only exists for the
/// instant between write and rename — so anything predating our start
/// is a crash leftover.
fn process_start() -> SystemTime {
    static START: OnceLock<SystemTime> = OnceLock::new();
    *START.get_or_init(SystemTime::now)
}

/// A directory of content-addressed cell results. See the
/// [module docs](self).
#[derive(Clone, Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory, sweeping away
    /// temp files left behind by crashed writers (anything matching the
    /// `.{key}.{pid}.tmp` shape with a modification time before this
    /// process started).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, String> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create cache directory `{}`: {e}", dir.display()))?;
        let cache = Self { dir };
        cache.sweep_stale_tmp(process_start());
        Ok(cache)
    }

    /// Deletes crash-leftover temp files older than `cutoff`. Best
    /// effort on a shared directory: races (another opener sweeping the
    /// same file, a writer renaming it away) just make the remove a
    /// no-op, and sweep failures never fail the open.
    fn sweep_stale_tmp(&self, cutoff: SystemTime) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !(name.starts_with('.') && name.ends_with(".tmp")) {
                continue;
            }
            let stale = entry
                .metadata()
                .and_then(|m| m.modified())
                .is_ok_and(|mtime| mtime < cutoff);
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cache key for a cell descriptor: the 32-hex-digit 128-bit
    /// FNV-1a of its canonical text. Two descriptors that differ in any
    /// byte get unrelated keys; the descriptor itself is not stored.
    #[must_use]
    pub fn key(descriptor: &str) -> String {
        fnv128_hex(descriptor.as_bytes())
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Looks up `key`, returning the stored payload on a hit. Every
    /// failure mode — no entry, unreadable file, corrupt JSON, a
    /// truncated write from a crashed run, an entry recorded under a
    /// different schema or key — is a miss (`None`), never an error.
    #[must_use]
    pub fn load(&self, key: &str) -> Option<Json> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let v = Json::parse(text.trim_end()).ok()?;
        if v.get("schema")?.as_str()? != CACHE_SCHEMA {
            return None;
        }
        if v.get("key")?.as_str()? != key {
            return None;
        }
        v.get("payload").cloned()
    }

    /// Stores `payload` under `key`, atomically: the entry is written
    /// to a temporary file in the cache directory and renamed into
    /// place, so concurrent readers see either the old entry or the
    /// complete new one.
    pub fn store(&self, key: &str, payload: &Json) -> Result<(), String> {
        let entry = Json::Obj(vec![
            ("schema".into(), Json::Str(CACHE_SCHEMA.into())),
            ("key".into(), Json::Str(key.into())),
            ("payload".into(), payload.clone()),
        ]);
        let tmp = self.dir.join(format!(".{key}.{}.tmp", std::process::id()));
        let target = self.entry_path(key);
        std::fs::write(&tmp, format!("{}\n", entry.dump()))
            .map_err(|e| format!("cannot write cache entry `{}`: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &target).map_err(|e| {
            // Clean the orphan up; the rename error is the one to report.
            let _ = std::fs::remove_file(&tmp);
            format!("cannot commit cache entry `{}`: {e}", target.display())
        })
    }

    /// Every committed entry file in the directory (`{key}.json`, temp
    /// files excluded), with its key.
    fn entry_files(&self) -> Result<Vec<(String, PathBuf)>, String> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| format!("cannot read cache directory `{}`: {e}", self.dir.display()))?;
        let mut files = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with('.') {
                continue;
            }
            let Some(key) = name.strip_suffix(".json") else { continue };
            files.push((key.to_string(), entry.path()));
        }
        files.sort();
        Ok(files)
    }

    /// Walks the directory and classifies every committed entry:
    /// loadable entries versus corrupt ones, plus their total size.
    pub fn stats(&self) -> Result<CacheStats, String> {
        let mut stats = CacheStats::default();
        for (key, path) in self.entry_files()? {
            stats.bytes += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            if self.load(&key).is_some() {
                stats.entries += 1;
            } else {
                stats.corrupt += 1;
            }
        }
        Ok(stats)
    }

    /// Removes every committed entry whose modification time is at
    /// least `older_than` in the past (so `0s` prunes everything), and
    /// returns how many were removed. Entries touched concurrently by
    /// another process simply survive until a later sweep; a remove
    /// racing a rewrite is a harmless no-op.
    pub fn gc(&self, older_than: Duration) -> Result<usize, String> {
        let cutoff = SystemTime::now()
            .checked_sub(older_than)
            .unwrap_or(SystemTime::UNIX_EPOCH);
        let mut removed = 0usize;
        for (_, path) in self.entry_files()? {
            let old = std::fs::metadata(&path)
                .and_then(|m| m.modified())
                .is_ok_and(|mtime| mtime <= cutoff);
            if old && std::fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rix-cache-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = ResultCache::open(scratch_dir("roundtrip")).unwrap();
        let key = ResultCache::key("cell descriptor text");
        assert_eq!(cache.load(&key), None, "cold cache misses");
        let payload = Json::parse(r#"{"result":{"cycles":41},"note":"x"}"#).unwrap();
        cache.store(&key, &payload).unwrap();
        assert_eq!(cache.load(&key), Some(payload));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_truncated_and_mismatched_entries_are_misses() {
        let cache = ResultCache::open(scratch_dir("corrupt")).unwrap();
        let key = ResultCache::key("the cell");
        let payload = Json::parse(r#"{"v":1}"#).unwrap();
        cache.store(&key, &payload).unwrap();
        let path = cache.dir().join(format!("{key}.json"));

        // Truncated mid-write (a crash before rename never leaves this,
        // but a copied/rsynced cache could).
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(cache.load(&key), None, "truncated entry is a miss, not a crash");

        // Not JSON at all.
        std::fs::write(&path, "not json\n").unwrap();
        assert_eq!(cache.load(&key), None);

        // Valid JSON, wrong schema.
        std::fs::write(&path, r#"{"schema":"rix-perf/1","key":"x","payload":{}}"#).unwrap();
        assert_eq!(cache.load(&key), None);

        // Valid entry filed under the wrong key (manual rename).
        let other = ResultCache::key("another cell");
        cache.store(&other, &payload).unwrap();
        std::fs::rename(cache.dir().join(format!("{other}.json")), &path).unwrap();
        assert_eq!(cache.load(&key), None, "key recorded inside the entry must match");

        // And a rewrite heals it.
        cache.store(&key, &payload).unwrap();
        assert_eq!(cache.load(&key), Some(payload));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stale_tmp_files_are_swept_fresh_ones_kept() {
        let dir = scratch_dir("tmp-sweep");
        let cache = ResultCache::open(&dir).unwrap();
        let stale = dir.join(".deadbeef.12345.tmp");
        let fresh = dir.join(".cafebabe.12346.tmp");
        let entry = dir.join("deadbeef.json");
        std::fs::write(&stale, "half-written").unwrap();
        std::fs::write(&fresh, "in flight").unwrap();
        std::fs::write(&entry, "a real entry").unwrap();

        // A cutoff in the future marks both tmp files stale; real
        // entries are never touched.
        cache.sweep_stale_tmp(SystemTime::now() + std::time::Duration::from_secs(3600));
        assert!(!stale.exists(), "stale tmp file swept");
        assert!(!fresh.exists());
        assert!(entry.exists(), "committed entries survive the sweep");

        // A cutoff in the past keeps everything.
        std::fs::write(&stale, "half-written").unwrap();
        cache.sweep_stale_tmp(SystemTime::now() - std::time::Duration::from_secs(3600));
        assert!(stale.exists(), "young tmp files are presumed live");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn open_does_not_sweep_tmp_files_written_after_process_start() {
        // An in-flight writer's tmp file (necessarily younger than any
        // live process's start) must survive a concurrent open.
        let dir = scratch_dir("tmp-live");
        std::fs::create_dir_all(&dir).unwrap();
        let live = dir.join(".0123abcd.999.tmp");
        std::fs::write(&live, "concurrent write in flight").unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert!(live.exists(), "open must not sweep fresh tmp files");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stats_classify_valid_and_corrupt_entries() {
        let cache = ResultCache::open(scratch_dir("stats")).unwrap();
        assert_eq!(cache.stats().unwrap(), CacheStats::default(), "empty cache");
        let payload = Json::parse(r#"{"v":1}"#).unwrap();
        for d in ["a", "b", "c"] {
            cache.store(&ResultCache::key(d), &payload).unwrap();
        }
        let bad = ResultCache::key("doomed");
        cache.store(&bad, &payload).unwrap();
        std::fs::write(cache.dir().join(format!("{bad}.json")), "not json").unwrap();
        // Temp files and non-entry files are not counted at all.
        std::fs::write(cache.dir().join(".0123.42.tmp"), "in flight").unwrap();
        std::fs::write(cache.dir().join("README"), "notes").unwrap();

        let stats = cache.stats().unwrap();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.corrupt, 1);
        assert!(stats.bytes > 0);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn gc_prunes_by_age_and_zero_prunes_everything() {
        let cache = ResultCache::open(scratch_dir("gc")).unwrap();
        let payload = Json::parse(r#"{"v":1}"#).unwrap();
        for d in ["a", "b"] {
            cache.store(&ResultCache::key(d), &payload).unwrap();
        }
        // Freshly-written entries are younger than an hour.
        assert_eq!(cache.gc(std::time::Duration::from_secs(3600)).unwrap(), 0);
        assert_eq!(cache.stats().unwrap().entries, 2, "young entries survive");
        // A zero threshold means "older than now": everything goes.
        assert_eq!(cache.gc(std::time::Duration::ZERO).unwrap(), 2);
        assert_eq!(cache.stats().unwrap(), CacheStats::default());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn distinct_descriptors_distinct_keys() {
        let a = ResultCache::key(r#"{"bench":"gcc","seed":7}"#);
        let b = ResultCache::key(r#"{"bench":"gcc","seed":8}"#);
        assert_ne!(a, b);
        assert_eq!(a.len(), 32);
    }
}
