//! The content-addressed trial cache (`--cache DIR`).
//!
//! One file per cell result, named by the 128-bit content hash of the
//! cell's *descriptor* (everything that determines the result:
//! benchmark, seed, config, budgets, warm-up provenance — built by the
//! caller, hashed with [`crate::hash::fnv128_hex`]). Entries are
//! `rix-trial-cache/1` JSON documents written atomically (temp file in
//! the cache directory, then `rename`), so a reader never observes a
//! torn entry and concurrent writers of the same key converge on one
//! winner with identical content.
//!
//! The cache is **forgiving on read, strict on write**: any unreadable,
//! unparsable, truncated or mismatched entry is a miss — the cell is
//! simply re-simulated and the entry rewritten — never an error. A
//! cache can be deleted, rsynced, or half-written by a crashed run
//! without poisoning anything.

use crate::hash::fnv128_hex;
use rix_isa::json::Json;
use std::path::{Path, PathBuf};

/// The on-disk entry schema.
pub const CACHE_SCHEMA: &str = "rix-trial-cache/1";

/// A directory of content-addressed cell results. See the
/// [module docs](self).
#[derive(Clone, Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, String> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create cache directory `{}`: {e}", dir.display()))?;
        Ok(Self { dir })
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cache key for a cell descriptor: the 32-hex-digit 128-bit
    /// FNV-1a of its canonical text. Two descriptors that differ in any
    /// byte get unrelated keys; the descriptor itself is not stored.
    #[must_use]
    pub fn key(descriptor: &str) -> String {
        fnv128_hex(descriptor.as_bytes())
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Looks up `key`, returning the stored payload on a hit. Every
    /// failure mode — no entry, unreadable file, corrupt JSON, a
    /// truncated write from a crashed run, an entry recorded under a
    /// different schema or key — is a miss (`None`), never an error.
    #[must_use]
    pub fn load(&self, key: &str) -> Option<Json> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let v = Json::parse(text.trim_end()).ok()?;
        if v.get("schema")?.as_str()? != CACHE_SCHEMA {
            return None;
        }
        if v.get("key")?.as_str()? != key {
            return None;
        }
        v.get("payload").cloned()
    }

    /// Stores `payload` under `key`, atomically: the entry is written
    /// to a temporary file in the cache directory and renamed into
    /// place, so concurrent readers see either the old entry or the
    /// complete new one.
    pub fn store(&self, key: &str, payload: &Json) -> Result<(), String> {
        let entry = Json::Obj(vec![
            ("schema".into(), Json::Str(CACHE_SCHEMA.into())),
            ("key".into(), Json::Str(key.into())),
            ("payload".into(), payload.clone()),
        ]);
        let tmp = self.dir.join(format!(".{key}.{}.tmp", std::process::id()));
        let target = self.entry_path(key);
        std::fs::write(&tmp, format!("{}\n", entry.dump()))
            .map_err(|e| format!("cannot write cache entry `{}`: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &target).map_err(|e| {
            // Clean the orphan up; the rename error is the one to report.
            let _ = std::fs::remove_file(&tmp);
            format!("cannot commit cache entry `{}`: {e}", target.display())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rix-cache-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = ResultCache::open(scratch_dir("roundtrip")).unwrap();
        let key = ResultCache::key("cell descriptor text");
        assert_eq!(cache.load(&key), None, "cold cache misses");
        let payload = Json::parse(r#"{"result":{"cycles":41},"note":"x"}"#).unwrap();
        cache.store(&key, &payload).unwrap();
        assert_eq!(cache.load(&key), Some(payload));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_truncated_and_mismatched_entries_are_misses() {
        let cache = ResultCache::open(scratch_dir("corrupt")).unwrap();
        let key = ResultCache::key("the cell");
        let payload = Json::parse(r#"{"v":1}"#).unwrap();
        cache.store(&key, &payload).unwrap();
        let path = cache.dir().join(format!("{key}.json"));

        // Truncated mid-write (a crash before rename never leaves this,
        // but a copied/rsynced cache could).
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(cache.load(&key), None, "truncated entry is a miss, not a crash");

        // Not JSON at all.
        std::fs::write(&path, "not json\n").unwrap();
        assert_eq!(cache.load(&key), None);

        // Valid JSON, wrong schema.
        std::fs::write(&path, r#"{"schema":"rix-perf/1","key":"x","payload":{}}"#).unwrap();
        assert_eq!(cache.load(&key), None);

        // Valid entry filed under the wrong key (manual rename).
        let other = ResultCache::key("another cell");
        cache.store(&other, &payload).unwrap();
        std::fs::rename(cache.dir().join(format!("{other}.json")), &path).unwrap();
        assert_eq!(cache.load(&key), None, "key recorded inside the entry must match");

        // And a rewrite heals it.
        cache.store(&key, &payload).unwrap();
        assert_eq!(cache.load(&key), Some(payload));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn distinct_descriptors_distinct_keys() {
        let a = ResultCache::key(r#"{"bench":"gcc","seed":7}"#);
        let b = ResultCache::key(r#"{"bench":"gcc","seed":8}"#);
        assert_ne!(a, b);
        assert_eq!(a.len(), 32);
    }
}
