//! The socket transport: a TCP coordinator ([`serve_cells`]) and the
//! reconnecting remote worker that feeds from it ([`connect_worker`]).
//!
//! The stdio pool ([`crate::pool`]) owns its workers — it spawned them,
//! a pipe EOF is a death certificate, and a pipe cannot go half-open.
//! None of that holds over a network: workers arrive on their own
//! schedule, vanish without an EOF, stall behind partitions, and come
//! back. This module is built around those failure modes:
//!
//! * **Heartbeats + liveness deadline.** Both sides send `ping` frames
//!   every heartbeat interval; any received frame proves the peer
//!   alive. A connection silent for 4× the heartbeat is declared lost
//!   and its in-flight cell requeued — that is the only way to detect a
//!   half-open TCP connection or a partition.
//! * **Reconnect with backoff.** A worker that loses the coordinator
//!   retries under a [`Backoff`] schedule (exponential, jittered,
//!   capped attempt budget). The budget resets after any connection
//!   that got as far as `init`, so a long-lived worker never ages out.
//! * **Quarantine.** Cell losses are attributed to the named peer
//!   (across reconnects). After `quarantine_after` *consecutive*
//!   attributed failures the peer is quarantined: its next hello is
//!   answered with a `quarantine` frame (worker exits 3) and its cells
//!   drain to healthy peers.
//! * **Graceful degradation.** A cell whose retry budget is spent, or
//!   every queued cell once all remote capacity has been gone longer
//!   than `worker_wait`, is handed back to the caller as *unfinished*
//!   rather than failing the run — the caller finishes those cells
//!   in-process and the [`PoolSummary`] records the degradation.
//!
//! The coordinator also serves the result cache over the wire
//! (`cache_load` / `cache_store` answered from its local
//! [`ResultCache`]), so remote hosts need no disk and no shared
//! filesystem to dedup.

use crate::cache::ResultCache;
use crate::pool::{CellLedger, PoolError, PoolSummary, WorkerStat};
use crate::transport::{
    Backoff, FrameSink, LineSource, NetFault, NetFaultKind, NextLine, TcpSink, TcpSource,
};
use crate::worker::{check_init_schema, run_cell, ServeError};
use rix_isa::json::Json;
use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How long a freshly-accepted connection may take to say `hello`.
const HELLO_DEADLINE: Duration = Duration::from_secs(10);
/// Poll granularity for socket reads and the coordinator event loop.
const POLL: Duration = Duration::from_millis(50);

/// Tuning for one [`serve_cells`] run.
#[derive(Clone, Debug)]
pub struct NetPoolConfig {
    /// Deadline per cell assignment; a worker that exceeds it is
    /// presumed hung, disconnected, and its cell retried elsewhere.
    pub cell_timeout: Duration,
    /// How many times one cell may be retried after a loss before it
    /// degrades to in-process execution.
    pub retries: u32,
    /// Heartbeat interval (liveness deadline is 4× this).
    pub heartbeat: Duration,
    /// Consecutive attributed failures that quarantine a peer.
    pub quarantine_after: u32,
    /// How long the coordinator waits with zero connected capacity
    /// (including at startup) before degrading the remaining cells to
    /// in-process execution.
    pub worker_wait: Duration,
    /// Shared secret: when set, every `hello` (worker and status alike)
    /// must carry a matching `"token"` field; a mismatch is answered
    /// with one structured `error` frame and the connection is closed.
    /// Workers read theirs from `RIX_DISPATCH_TOKEN`.
    pub token: Option<String>,
}

impl Default for NetPoolConfig {
    fn default() -> Self {
        Self {
            cell_timeout: Duration::from_secs(300),
            retries: 2,
            heartbeat: Duration::from_secs(2),
            quarantine_after: 3,
            worker_wait: Duration::from_secs(60),
            token: None,
        }
    }
}

/// What a [`serve_cells`] run produced: payloads for the cells remote
/// workers finished, the indices it degraded (for the caller to finish
/// in-process), and the accounting.
#[derive(Debug)]
pub struct NetOutcome {
    /// One slot per input cell, in order; `None` exactly for the
    /// entries listed in `unfinished`.
    pub payloads: Vec<Option<Json>>,
    /// Indices (into the input `cells`) that degraded to the caller.
    pub unfinished: Vec<usize>,
    /// The run's accounting, including per-peer stats.
    pub summary: PoolSummary,
}

enum NetEvent {
    /// Connection `id` completed its handshake read: here is its write
    /// half and its `hello`.
    Hello(usize, TcpSink, Json),
    /// One frame from connection `id`.
    Line(usize, String),
    /// Connection `id` closed (EOF, reset, or our own shutdown).
    Eof(usize),
}

struct Conn {
    name: String,
    sink: TcpSink,
    alive: bool,
    /// `(position in `cells`, deadline)` of the in-flight assignment.
    busy: Option<(usize, Instant)>,
    last_seen: Instant,
}

#[derive(Default)]
struct Peer {
    connections: u64,
    cells_completed: u64,
    failures: u64,
    consecutive: u32,
    quarantined: bool,
}

/// Serves `cells` to remote workers connecting on `listener` and
/// returns their payloads in cell order (degraded cells excepted — see
/// [`NetOutcome`]).
///
/// `keys[i]` (when given, one per cell) rides along on the cell frame
/// so workers can run the remote cache dance; `cache` is the local
/// store that backs their `cache_load`/`cache_store` traffic.
///
/// Fails only on a worker-reported `error` (deterministic, so no retry
/// can help) — every *network* failure is retried, quarantined around,
/// or degraded past, never fatal.
pub fn serve_cells(
    listener: TcpListener,
    plan: &Json,
    cells: &[u64],
    keys: Option<&[String]>,
    cache: Option<&ResultCache>,
    cfg: &NetPoolConfig,
) -> Result<NetOutcome, PoolError> {
    if let Some(keys) = keys {
        if keys.len() != cells.len() {
            return Err(PoolError::msg(format!(
                "internal: {} cache keys for {} cells",
                keys.len(),
                cells.len()
            )));
        }
    }
    if cells.is_empty() {
        return Ok(NetOutcome {
            payloads: Vec::new(),
            unfinished: Vec::new(),
            summary: PoolSummary::default(),
        });
    }
    listener
        .set_nonblocking(true)
        .map_err(|e| PoolError::msg(format!("cannot make the listener non-blocking: {e}")))?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<NetEvent>();
    {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || accept_loop(&listener, &tx, &stop));
    }

    let mut co = Coordinator {
        cfg,
        cache,
        keys,
        plan_line: plan.dump(),
        ledger: CellLedger::new(cells),
        summary: PoolSummary::default(),
        unfinished: Vec::new(),
        conns: BTreeMap::new(),
        peers: BTreeMap::new(),
        ping_n: 0,
    };
    let mut last_capacity = Instant::now();
    let mut last_ping = Instant::now();

    let out = loop {
        if co.ledger.done + co.unfinished.len() == cells.len() {
            break Ok(());
        }
        co.feed();
        if last_ping.elapsed() >= cfg.heartbeat {
            last_ping = Instant::now();
            co.ping_all();
        }
        match rx.recv_timeout(POLL) {
            Ok(NetEvent::Hello(id, sink, hello)) => co.handle_hello(id, sink, &hello),
            Ok(NetEvent::Line(id, line)) => {
                if let Err(e) = co.handle_line(id, &line) {
                    break Err(e);
                }
            }
            Ok(NetEvent::Eof(id)) => co.lose_conn(id, "lost its connection"),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                break Err(PoolError::msg("connection event channel closed unexpectedly"));
            }
        }
        co.sweep_deadlines();
        co.sweep_liveness();
        if co.has_capacity() {
            last_capacity = Instant::now();
        } else if last_capacity.elapsed() > cfg.worker_wait {
            co.degrade_queue(&format!(
                "no connected workers for {:.1}s",
                cfg.worker_wait.as_secs_f64()
            ));
        }
    };
    stop.store(true, Ordering::Relaxed);
    co.finish();
    match out {
        Ok(()) => {
            let mut unfinished = co.unfinished;
            unfinished.sort_unstable();
            Ok(NetOutcome { payloads: co.ledger.results, unfinished, summary: co.summary })
        }
        Err(e) => Err(e),
    }
}

/// Accepts connections until told to stop, spawning a reader thread per
/// connection.
fn accept_loop(listener: &TcpListener, tx: &mpsc::Sender<NetEvent>, stop: &Arc<AtomicBool>) {
    let mut next_id = 0usize;
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let id = next_id;
                next_id += 1;
                let tx = tx.clone();
                std::thread::spawn(move || connection_reader(id, stream, &tx));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Drains one connection into the coordinator's event channel: the
/// handshake `hello` first (with a deadline — a connection that never
/// introduces itself is dropped without bothering the event loop), then
/// every subsequent frame, then EOF.
fn connection_reader(id: usize, stream: TcpStream, tx: &mpsc::Sender<NetEvent>) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let mut sink = TcpSink::new(write_half);
    let Ok(mut source) = TcpSource::new(stream, POLL) else {
        sink.close();
        return;
    };
    let deadline = Instant::now() + HELLO_DEADLINE;
    let hello = loop {
        match source.next_line() {
            Ok(NextLine::Line(line)) => break line,
            Ok(NextLine::Idle) if Instant::now() < deadline => {}
            _ => {
                sink.close();
                return;
            }
        }
    };
    let Ok(hello) = Json::parse(&hello) else {
        sink.close();
        return;
    };
    if tx.send(NetEvent::Hello(id, sink.clone(), hello)).is_err() {
        sink.close();
        return;
    }
    loop {
        match source.next_line() {
            Ok(NextLine::Line(line)) => {
                if tx.send(NetEvent::Line(id, line)).is_err() {
                    return;
                }
            }
            Ok(NextLine::Idle) => {}
            Ok(NextLine::Eof) | Err(_) => {
                let _ = tx.send(NetEvent::Eof(id));
                return;
            }
        }
    }
}

struct Coordinator<'a> {
    cfg: &'a NetPoolConfig,
    cache: Option<&'a ResultCache>,
    keys: Option<&'a [String]>,
    plan_line: String,
    ledger: CellLedger<'a>,
    summary: PoolSummary,
    unfinished: Vec<usize>,
    conns: BTreeMap<usize, Conn>,
    peers: BTreeMap<String, Peer>,
    ping_n: u64,
}

impl Coordinator<'_> {
    fn handle_hello(&mut self, id: usize, mut sink: TcpSink, hello: &Json) {
        if check_init_schema(hello).is_err() {
            let _ = sink.send(&format!(
                "{{\"type\":\"error\",\"message\":{}}}",
                Json::Str(format!(
                    "unsupported hello schema (this coordinator speaks {})",
                    crate::PROTOCOL_SCHEMA
                ))
                .dump()
            ));
            sink.close();
            return;
        }
        if let Some(expected) = &self.cfg.token {
            if hello.get("token").and_then(Json::as_str) != Some(expected.as_str()) {
                let _ = sink.send(&format!(
                    "{{\"type\":\"error\",\"message\":{}}}",
                    Json::Str(
                        "hello rejected: missing or mismatched token (set --token or \
                         RIX_DISPATCH_TOKEN to this coordinator's shared secret)"
                            .into()
                    )
                    .dump()
                ));
                sink.close();
                return;
            }
        }
        if hello.get("role").and_then(Json::as_str) == Some("status") {
            let _ = sink.send(&self.status_doc().dump());
            sink.close();
            return;
        }
        let name = hello
            .get("name")
            .and_then(Json::as_str)
            .map_or_else(|| format!("conn-{id}"), str::to_string);
        let peer = self.peers.entry(name.clone()).or_default();
        if peer.quarantined {
            let _ = sink.send("{\"type\":\"quarantine\"}");
            sink.close();
            return;
        }
        peer.connections += 1;
        let init = format!(
            "{{\"schema\":\"{}\",\"type\":\"init\",\"worker\":{id},\"heartbeat_ms\":{},\
             \"cache\":{},\"plan\":{}}}",
            crate::PROTOCOL_SCHEMA,
            self.cfg.heartbeat.as_millis(),
            self.cache.is_some(),
            self.plan_line
        );
        if sink.send(&init).is_err() {
            sink.close();
            return;
        }
        eprintln!("dispatch: worker {name} connected");
        self.conns.insert(
            id,
            Conn { name, sink, alive: true, busy: None, last_seen: Instant::now() },
        );
    }

    fn handle_line(&mut self, id: usize, line: &str) -> Result<(), PoolError> {
        let Some(conn) = self.conns.get_mut(&id) else { return Ok(()) };
        if !conn.alive {
            return Ok(());
        }
        conn.last_seen = Instant::now();
        let Ok(msg) = Json::parse(line) else {
            self.lose_conn(id, "sent an unparsable frame");
            return Ok(());
        };
        match msg.get("type").and_then(Json::as_str) {
            Some("ping") => Ok(()),
            Some("result") => {
                let name = conn.name.clone();
                let (Ok(cell), Ok(payload)) = (msg.req_u64("cell"), msg.req("payload")) else {
                    self.lose_conn(id, "sent a malformed result frame");
                    return Ok(());
                };
                match conn.busy {
                    Some((pos, _)) if self.ledger.cells[pos] == cell => {
                        let payload = payload.clone();
                        conn.busy = None;
                        if msg.get("cached").and_then(Json::as_bool) == Some(true) {
                            self.summary.cache_hits += 1;
                        }
                        let peer = self.peers.entry(name).or_default();
                        peer.cells_completed += 1;
                        peer.consecutive = 0;
                        self.ledger.complete(pos, payload);
                    }
                    _ => self.lose_conn(id, &format!("sent a result for unassigned cell {cell}")),
                }
                Ok(())
            }
            Some("error") => {
                let cell = msg.get("cell").and_then(Json::as_u64);
                let message = msg.get("message").and_then(Json::as_str).unwrap_or("(no message)");
                Err(PoolError {
                    cell,
                    history: cell
                        .and_then(|c| self.ledger.cells.iter().position(|&x| x == c))
                        .map(|pos| self.ledger.history[pos].clone())
                        .unwrap_or_default(),
                    message: format!("worker {} reported: {message}", conn.name),
                })
            }
            Some("cache_load") => {
                let Some(key) = msg.get("key").and_then(Json::as_str) else {
                    self.lose_conn(id, "sent a keyless cache_load");
                    return Ok(());
                };
                let kj = Json::Str(key.to_string()).dump();
                let reply = match self.cache.and_then(|c| c.load(key)) {
                    Some(payload) => format!(
                        "{{\"type\":\"cache_hit\",\"key\":{kj},\"payload\":{}}}",
                        payload.dump()
                    ),
                    None => format!("{{\"type\":\"cache_miss\",\"key\":{kj}}}"),
                };
                if conn.sink.send(&reply).is_err() {
                    self.lose_conn(id, "lost its connection");
                }
                Ok(())
            }
            Some("cache_store") => {
                let (Some(key), Ok(payload)) =
                    (msg.get("key").and_then(Json::as_str), msg.req("payload"))
                else {
                    self.lose_conn(id, "sent a malformed cache_store");
                    return Ok(());
                };
                if let Some(cache) = self.cache {
                    if let Err(e) = cache.store(key, payload) {
                        eprintln!("dispatch: cache store failed (continuing): {e}");
                    }
                }
                Ok(())
            }
            other => {
                self.lose_conn(id, &format!("sent an unexpected {other:?} frame"));
                Ok(())
            }
        }
    }

    /// Hands queued cells to every idle live connection.
    fn feed(&mut self) {
        let mut lost: Vec<usize> = Vec::new();
        for (&id, conn) in &mut self.conns {
            if !(conn.alive && conn.busy.is_none()) {
                continue;
            }
            let Some(pos) = self.ledger.queue.pop_front() else { break };
            let frame = match self.keys {
                Some(keys) => format!(
                    "{{\"type\":\"cell\",\"cell\":{},\"key\":{}}}",
                    self.ledger.cells[pos],
                    Json::Str(keys[pos].clone()).dump()
                ),
                None => format!("{{\"type\":\"cell\",\"cell\":{}}}", self.ledger.cells[pos]),
            };
            if conn.sink.send(&frame).is_ok() {
                conn.busy = Some((pos, Instant::now() + self.cfg.cell_timeout));
            } else {
                // The send itself failed, so the cell never reached the
                // worker: put it back uncharged and retire the
                // connection (its EOF event is already in flight).
                self.ledger.queue.push_front(pos);
                lost.push(id);
            }
        }
        for id in lost {
            self.lose_conn(id, "lost its connection");
        }
    }

    fn ping_all(&mut self) {
        self.ping_n += 1;
        let frame = format!("{{\"type\":\"ping\",\"n\":{}}}", self.ping_n);
        let mut lost: Vec<usize> = Vec::new();
        for (&id, conn) in &mut self.conns {
            if conn.alive && conn.sink.send(&frame).is_err() {
                lost.push(id);
            }
        }
        for id in lost {
            self.lose_conn(id, "lost its connection");
        }
    }

    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let timeout = self.cfg.cell_timeout.as_secs_f64();
        let expired: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| c.alive && c.busy.is_some_and(|(_, d)| now >= d))
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            self.lose_conn(id, &format!("exceeded the {timeout:.0}s cell deadline (presumed hung)"));
        }
    }

    fn sweep_liveness(&mut self) {
        let deadline = self.cfg.heartbeat * 4;
        let silent: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| c.alive && c.last_seen.elapsed() > deadline)
            .map(|(&id, _)| id)
            .collect();
        for id in silent {
            self.lose_conn(
                id,
                &format!(
                    "went silent past the {:.1}s liveness deadline (half-open or partitioned)",
                    deadline.as_secs_f64()
                ),
            );
        }
    }

    /// Declares connection `id` dead: closes it, and — when a cell was
    /// in flight — attributes the loss to the peer (feeding the
    /// quarantine counter) and requeues or degrades the cell.
    fn lose_conn(&mut self, id: usize, why: &str) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        if !conn.alive {
            return;
        }
        conn.alive = false;
        conn.sink.close();
        let name = conn.name.clone();
        let Some((pos, _)) = conn.busy.take() else { return };
        eprintln!("dispatch: worker {name} {why}; requeueing its cell");
        self.summary.workers_lost += 1;
        self.ledger.record(pos, &format!("worker {name} {why}"));
        if self.ledger.requeue(pos, self.cfg.retries, &mut self.summary).is_err() {
            self.ledger.record(pos, "retry budget spent; finishing in-process");
            eprintln!(
                "dispatch: cell {} spent its retry budget; degrading to in-process",
                self.ledger.cells[pos]
            );
            self.unfinished.push(pos);
            self.summary.degraded_cells += 1;
        }
        let peer = self.peers.entry(name.clone()).or_default();
        peer.failures += 1;
        peer.consecutive += 1;
        if peer.consecutive >= self.cfg.quarantine_after && !peer.quarantined {
            peer.quarantined = true;
            eprintln!(
                "dispatch: quarantining worker {name} after {} consecutive failures",
                peer.consecutive
            );
            // Close the peer's other connections; their cells go back
            // uncharged (they never failed there).
            let same: Vec<usize> = self
                .conns
                .iter()
                .filter(|(&cid, c)| cid != id && c.alive && c.name == name)
                .map(|(&cid, _)| cid)
                .collect();
            for cid in same {
                if let Some(c) = self.conns.get_mut(&cid) {
                    let _ = c.sink.send("{\"type\":\"quarantine\"}");
                    c.sink.close();
                    c.alive = false;
                    if let Some((p, _)) = c.busy.take() {
                        self.ledger.record(p, &format!("reassigned: worker {name} quarantined"));
                        self.ledger.queue.push_front(p);
                    }
                }
            }
        }
    }

    /// Any live connection whose peer is not quarantined?
    fn has_capacity(&self) -> bool {
        self.conns.values().any(|c| {
            c.alive && !self.peers.get(&c.name).is_some_and(|p| p.quarantined)
        })
    }

    /// Degrades every queued cell to in-process execution.
    fn degrade_queue(&mut self, why: &str) {
        while let Some(pos) = self.ledger.queue.pop_front() {
            self.ledger.record(pos, &format!("{why}; finishing in-process"));
            self.unfinished.push(pos);
            self.summary.degraded_cells += 1;
        }
    }

    fn status_doc(&self) -> Json {
        let workers: Vec<Json> = self
            .peers
            .iter()
            .map(|(name, p)| {
                let connected =
                    self.conns.values().any(|c| c.alive && &c.name == name);
                Json::Obj(vec![
                    ("name".into(), Json::Str(name.clone())),
                    (
                        "state".into(),
                        Json::Str(
                            if p.quarantined {
                                "quarantined"
                            } else if connected {
                                "live"
                            } else {
                                "lost"
                            }
                            .into(),
                        ),
                    ),
                    ("cells_completed".into(), Json::Num(p.cells_completed.to_string())),
                    ("failures".into(), Json::Num(p.failures.to_string())),
                    (
                        "reconnects".into(),
                        Json::Num(p.connections.saturating_sub(1).to_string()),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(crate::STATUS_SCHEMA.into())),
            ("cells_total".into(), Json::Num(self.ledger.cells.len().to_string())),
            ("cells_done".into(), Json::Num(self.ledger.done.to_string())),
            ("queued".into(), Json::Num(self.ledger.queue.len().to_string())),
            ("retries".into(), Json::Num(self.summary.retries.to_string())),
            ("workers".into(), Json::Arr(workers)),
        ])
    }

    /// Shuts surviving workers down cleanly and fills the summary's
    /// per-peer stats.
    fn finish(&mut self) {
        for conn in self.conns.values_mut() {
            if conn.alive {
                let _ = conn.sink.send("{\"type\":\"shutdown\"}");
            }
            conn.sink.close();
        }
        self.summary.workers_spawned = self.peers.len();
        self.summary.quarantined = self.peers.values().filter(|p| p.quarantined).count();
        self.summary.workers = self
            .peers
            .iter()
            .map(|(name, p)| WorkerStat {
                name: name.clone(),
                connected: self.conns.values().any(|c| &c.name == name && c.alive),
                cells_completed: p.cells_completed,
                failures: p.failures,
                reconnects: p.connections.saturating_sub(1),
                quarantined: p.quarantined,
            })
            .collect();
    }
}

// ----- the remote worker ------------------------------------------------

/// One-shot guard for non-`repeat` network fault injection.
static NET_FAULT_FIRED: AtomicBool = AtomicBool::new(false);

enum ConnEnd {
    /// The coordinator sent `shutdown`: the sweep is over.
    Shutdown,
    /// The coordinator quarantined this worker.
    Quarantined,
    /// Deterministic failure (executor error, protocol violation).
    Fatal(String),
    /// The connection died; `inited` records whether the session got as
    /// far as `init` (which resets the reconnect attempt budget).
    Lost { inited: bool, reason: String },
}

/// Runs a remote worker against the coordinator at `addr`, reconnecting
/// with `backoff` on connection loss, until the coordinator shuts it
/// down. Returns the process exit code: 0 clean shutdown, 1
/// deterministic failure, 2 the coordinator became unreachable past the
/// backoff budget, 3 quarantined.
///
/// `name` identifies this worker across reconnects — the coordinator's
/// failure attribution and quarantine are keyed by it, so it should be
/// unique per worker process (e.g. `host-pid`).
pub fn connect_worker<F>(addr: &str, name: &str, backoff: &Backoff, mut execute: F) -> i32
where
    F: FnMut(&Json, u64) -> Result<Json, String>,
{
    let fault = NetFault::from_env();
    let mut attempt: u32 = 0;
    loop {
        let end = match TcpStream::connect(addr) {
            Ok(stream) => serve_connection(&stream, name, fault, &mut execute),
            Err(e) => ConnEnd::Lost { inited: false, reason: format!("cannot connect: {e}") },
        };
        match end {
            ConnEnd::Shutdown => return 0,
            ConnEnd::Quarantined => {
                eprintln!("rix worker {name}: quarantined by the coordinator");
                return 3;
            }
            ConnEnd::Fatal(e) => {
                eprintln!("rix worker {name}: {e}");
                return 1;
            }
            ConnEnd::Lost { inited, reason } => {
                if inited {
                    // A session that reached `init` proves the address
                    // is real: start the backoff schedule over.
                    attempt = 0;
                }
                let Some(delay) = backoff.delay(attempt) else {
                    eprintln!(
                        "rix worker {name}: {reason}; reconnect budget ({}) spent, giving up",
                        backoff.max_attempts
                    );
                    return 2;
                };
                eprintln!(
                    "rix worker {name}: {reason}; reconnecting in {:.2}s (attempt {})",
                    delay.as_secs_f64(),
                    attempt + 1
                );
                std::thread::sleep(delay);
                attempt += 1;
            }
        }
    }
}

/// Serves one coordinator connection to completion.
fn serve_connection<F>(
    stream: &TcpStream,
    name: &str,
    fault: Option<NetFault>,
    execute: &mut F,
) -> ConnEnd
where
    F: FnMut(&Json, u64) -> Result<Json, String>,
{
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return ConnEnd::Lost { inited: false, reason: "cannot clone the socket".into() };
    };
    let Ok(read_half) = stream.try_clone() else {
        return ConnEnd::Lost { inited: false, reason: "cannot clone the socket".into() };
    };
    let mut sink = TcpSink::new(write_half);
    let mut source = match TcpSource::new(read_half, POLL) {
        Ok(s) => s,
        Err(e) => {
            return ConnEnd::Lost { inited: false, reason: format!("cannot set read timeout: {e}") };
        }
    };
    let hello = format!(
        "{{\"schema\":\"{}\",\"type\":\"hello\",\"name\":{},\"role\":\"worker\"{}}}",
        crate::PROTOCOL_SCHEMA,
        Json::Str(name.to_string()).dump(),
        hello_token()
    );
    if let Err(e) = sink.send(&hello) {
        return ConnEnd::Lost { inited: false, reason: format!("hello send failed: {e}") };
    }

    let mut init: Option<Json> = None;
    // Until `init` arrives the coordinator owes us a frame promptly;
    // after it, silence is bounded by the heartbeat liveness deadline.
    let mut liveness = Duration::from_secs(30);
    let mut last_seen = Instant::now();
    let stop_hb = Arc::new(AtomicBool::new(false));
    let mut actionable: u64 = 0;

    let end = loop {
        let line = match source.next_line() {
            Ok(NextLine::Line(line)) => line,
            Ok(NextLine::Idle) => {
                if last_seen.elapsed() > liveness {
                    break ConnEnd::Lost {
                        inited: init.is_some(),
                        reason: format!(
                            "coordinator silent past the {:.1}s liveness deadline",
                            liveness.as_secs_f64()
                        ),
                    };
                }
                continue;
            }
            Ok(NextLine::Eof) => {
                break ConnEnd::Lost {
                    inited: init.is_some(),
                    reason: "coordinator closed the connection".into(),
                };
            }
            Err(e) => {
                break ConnEnd::Lost { inited: init.is_some(), reason: format!("read failed: {e}") };
            }
        };
        last_seen = Instant::now();
        let Ok(msg) = Json::parse(&line) else {
            break ConnEnd::Fatal(format!("unparsable coordinator frame {line:?}"));
        };
        let kind = msg.get("type").and_then(Json::as_str).map(str::to_string);
        if matches!(kind.as_deref(), Some("init" | "cell" | "shutdown")) {
            actionable += 1;
            if let Some(f) = fault {
                if actionable == f.at && (f.repeat || !NET_FAULT_FIRED.swap(true, Ordering::Relaxed))
                {
                    match f.kind {
                        NetFaultKind::Exit => {
                            eprintln!("rix worker {name}: injected net-exit at frame {actionable}");
                            std::process::exit(86);
                        }
                        NetFaultKind::Drop => {
                            eprintln!("rix worker {name}: injected net-drop at frame {actionable}");
                            stop_hb.store(true, Ordering::Relaxed);
                            sink.close();
                            break ConnEnd::Lost {
                                inited: init.is_some(),
                                reason: "injected connection drop".into(),
                            };
                        }
                        NetFaultKind::Stall => {
                            eprintln!("rix worker {name}: injected net-stall at frame {actionable}");
                            // Half-open: the socket stays up, nothing
                            // flows either way (heartbeats included) —
                            // only the coordinator's liveness deadline
                            // can reclaim the cell.
                            stop_hb.store(true, Ordering::Relaxed);
                            loop {
                                std::thread::sleep(Duration::from_secs(3600));
                            }
                        }
                    }
                }
            }
        }
        match kind.as_deref() {
            Some("ping") => {}
            Some("init") => {
                if let Err(e) = check_init_schema(&msg) {
                    break ConnEnd::Fatal(e);
                }
                let hb_ms = msg.get("heartbeat_ms").and_then(Json::as_u64).unwrap_or(0);
                if hb_ms > 0 {
                    let interval = Duration::from_millis(hb_ms);
                    liveness = (interval * 4).max(Duration::from_secs(1));
                    let stop = Arc::clone(&stop_hb);
                    let mut hb_sink = sink.clone();
                    std::thread::spawn(move || {
                        let mut n: u64 = 0;
                        while !stop.load(Ordering::Relaxed) {
                            std::thread::sleep(interval);
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            n += 1;
                            if hb_sink.send(&format!("{{\"type\":\"ping\",\"n\":{n}}}")).is_err() {
                                break;
                            }
                        }
                    });
                }
                init = Some(msg);
            }
            Some("cell") => {
                let Some(init_msg) = init.clone() else {
                    break ConnEnd::Fatal("cell assignment before init".into());
                };
                match run_cell(&mut source, &mut sink, &init_msg, &msg, execute) {
                    Ok(()) => last_seen = Instant::now(),
                    Err(ServeError::Fatal(e)) => break ConnEnd::Fatal(e),
                    Err(ServeError::Lost(e)) => {
                        break ConnEnd::Lost { inited: true, reason: e };
                    }
                }
            }
            Some("shutdown") => break ConnEnd::Shutdown,
            Some("quarantine") => break ConnEnd::Quarantined,
            // A structured rejection (bad token, unsupported schema):
            // the coordinator will never accept this configuration, so
            // reconnecting would only loop — treat it as fatal.
            Some("error") => {
                let reason = msg
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified coordinator error");
                break ConnEnd::Fatal(format!("coordinator rejected this worker: {reason}"));
            }
            other => break ConnEnd::Fatal(format!("unexpected coordinator frame type {other:?}")),
        }
    };
    stop_hb.store(true, Ordering::Relaxed);
    sink.close();
    end
}

/// The optional `,"token":…` hello fragment: the shared secret from
/// `RIX_DISPATCH_TOKEN`, empty when unset. Read from the environment on
/// every connection so a rotated secret takes effect on reconnect.
fn hello_token() -> String {
    std::env::var("RIX_DISPATCH_TOKEN")
        .ok()
        .map_or_else(String::new, |t| format!(",\"token\":{}", Json::Str(t).dump()))
}

/// Asks the coordinator at `addr` for its live status document
/// (`rix-dispatch-status/1`): cells done/queued, per-worker liveness,
/// completions, failures, reconnects and quarantine state. Sends the
/// `RIX_DISPATCH_TOKEN` shared secret when set (token-protected
/// coordinators reject status hellos too).
pub fn query_status(addr: &str) -> Result<Json, String> {
    let stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let Ok(write_half) = stream.try_clone() else {
        return Err("cannot clone the socket".into());
    };
    let mut sink = TcpSink::new(write_half);
    let mut source = TcpSource::new(stream, POLL)
        .map_err(|e| format!("cannot set read timeout: {e}"))?;
    sink.send(&format!(
        "{{\"schema\":\"{}\",\"type\":\"hello\",\"name\":\"status\",\"role\":\"status\"{}}}",
        crate::PROTOCOL_SCHEMA,
        hello_token()
    ))
    .map_err(|e| format!("hello send failed: {e}"))?;
    let deadline = Instant::now() + HELLO_DEADLINE;
    let line = loop {
        match source.next_line() {
            Ok(NextLine::Line(line)) => break line,
            Ok(NextLine::Idle) => {
                if Instant::now() >= deadline {
                    return Err(format!("no status reply from {addr} within 10s"));
                }
            }
            Ok(NextLine::Eof) => return Err(format!("{addr} closed the connection mid-reply")),
            Err(e) => return Err(format!("read failed: {e}")),
        }
    };
    sink.close();
    let doc = Json::parse(&line).map_err(|e| format!("unparsable status reply: {e}"))?;
    if doc.get("type").and_then(Json::as_str) == Some("error") {
        let reason =
            doc.get("message").and_then(Json::as_str).unwrap_or("unspecified error");
        return Err(format!("{addr} rejected the status query: {reason}"));
    }
    match doc.get("schema").and_then(Json::as_str) {
        Some(crate::STATUS_SCHEMA) => Ok(doc),
        other => Err(format!("unexpected status schema {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    fn plan() -> Json {
        Json::parse(r#"{"note":"net test plan"}"#).unwrap()
    }

    fn echo(_init: &Json, cell: u64) -> Result<Json, String> {
        Json::parse(&format!("{{\"cell\":{cell}}}")).map_err(|e| e.to_string())
    }

    fn fast_cfg() -> NetPoolConfig {
        NetPoolConfig {
            cell_timeout: Duration::from_secs(10),
            retries: 2,
            heartbeat: Duration::from_millis(100),
            quarantine_after: 3,
            worker_wait: Duration::from_secs(10),
            token: None,
        }
    }

    fn listen() -> (TcpListener, String) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        (listener, addr)
    }

    /// A backoff that gives up fast, so a worker left over after the
    /// run ends does not stretch the test.
    fn fast_backoff() -> Backoff {
        Backoff {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(50),
            max_attempts: 4,
            seed: 1,
        }
    }

    #[test]
    fn tcp_workers_complete_all_cells_and_shut_down_cleanly() {
        let (listener, addr) = listen();
        let workers: Vec<_> = ["alpha", "beta"]
            .into_iter()
            .map(|name| {
                let addr = addr.clone();
                std::thread::spawn(move || connect_worker(&addr, name, &fast_backoff(), echo))
            })
            .collect();
        let cells: Vec<u64> = vec![3, 1, 4, 15, 9, 2, 6];
        let out = serve_cells(listener, &plan(), &cells, None, None, &fast_cfg()).unwrap();
        assert!(out.unfinished.is_empty());
        for (cell, payload) in cells.iter().zip(&out.payloads) {
            let payload = payload.as_ref().expect("filled");
            assert_eq!(payload.get("cell").and_then(Json::as_u64), Some(*cell));
        }
        assert!(out.summary.workers_spawned >= 1);
        assert_eq!(out.summary.workers_lost, 0);
        let total: u64 = out.summary.workers.iter().map(|w| w.cells_completed).sum();
        assert_eq!(total, cells.len() as u64);
        for w in workers {
            let code = w.join().unwrap();
            // 0: served and saw shutdown; 2: connected after the run
            // ended and exhausted its reconnect budget. Both clean.
            assert!(code == 0 || code == 2, "unexpected worker exit {code}");
        }
    }

    #[test]
    fn worker_error_frames_are_fatal() {
        let (listener, addr) = listen();
        let w = std::thread::spawn(move || {
            connect_worker(&addr, "boom", &fast_backoff(), |_, _| {
                Err("deterministic failure".into())
            })
        });
        let err = serve_cells(listener, &plan(), &[0, 1], None, None, &fast_cfg()).unwrap_err();
        assert!(err.to_string().contains("deterministic failure"), "{err}");
        assert_eq!(w.join().unwrap(), 1, "executor errors kill the worker");
    }

    #[test]
    fn no_workers_degrades_every_cell_after_the_wait() {
        let (listener, _) = listen();
        let cfg = NetPoolConfig { worker_wait: Duration::from_millis(200), ..fast_cfg() };
        let cells: Vec<u64> = vec![7, 8, 9];
        let out = serve_cells(listener, &plan(), &cells, None, None, &cfg).unwrap();
        assert_eq!(out.unfinished, vec![0, 1, 2], "every cell handed back");
        assert!(out.payloads.iter().all(Option::is_none));
        assert_eq!(out.summary.degraded_cells, 3);
        assert_eq!(out.summary.workers_spawned, 0);
    }

    #[test]
    fn token_mismatch_gets_a_structured_rejection() {
        let (listener, addr) = listen();
        let cfg = NetPoolConfig {
            token: Some("sesame".into()),
            worker_wait: Duration::from_millis(200),
            ..fast_cfg()
        };
        // A tokenless peer must receive exactly one structured error
        // frame, then EOF — never an init.
        let intruder = std::thread::spawn(move || {
            let mut s = TcpStream::connect(&addr).unwrap();
            writeln!(
                s,
                "{{\"schema\":\"rix-dispatch/2\",\"type\":\"hello\",\"name\":\"intruder\",\"role\":\"worker\"}}"
            )
            .unwrap();
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let mut first = String::new();
            reader.read_line(&mut first).unwrap();
            let mut rest = String::new();
            reader.read_line(&mut rest).unwrap_or(0);
            (first, rest)
        });
        let out = serve_cells(listener, &plan(), &[3], None, None, &cfg).unwrap();
        let (first, rest) = intruder.join().unwrap();
        let reply = Json::parse(first.trim()).expect("rejection is a JSON frame");
        assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"));
        assert!(
            reply.get("message").and_then(Json::as_str).unwrap_or("").contains("token"),
            "{first}"
        );
        assert!(rest.is_empty(), "connection closed after the rejection: {rest:?}");
        assert_eq!(out.summary.workers_spawned, 0, "the intruder never became a worker");
        assert_eq!(out.unfinished, vec![0], "its cell degraded to the caller");
    }

    #[test]
    fn matching_token_is_admitted_and_serves_cells() {
        let (listener, addr) = listen();
        let cfg = NetPoolConfig { token: Some("sesame".into()), ..fast_cfg() };
        let worker = std::thread::spawn(move || {
            let mut s = TcpStream::connect(&addr).unwrap();
            writeln!(
                s,
                "{{\"schema\":\"rix-dispatch/2\",\"type\":\"hello\",\"name\":\"keyed\",\"role\":\"worker\",\"token\":\"sesame\"}}"
            )
            .unwrap();
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let mut saw_init = false;
            let mut line = String::new();
            loop {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    break;
                }
                let msg = Json::parse(line.trim()).unwrap();
                match msg.get("type").and_then(Json::as_str) {
                    Some("init") => saw_init = true,
                    Some("ping") => {}
                    Some("cell") => {
                        let cell = msg.get("cell").and_then(Json::as_u64).unwrap();
                        writeln!(
                            s,
                            "{{\"type\":\"result\",\"cell\":{cell},\"payload\":{{\"cell\":{cell}}}}}"
                        )
                        .unwrap();
                    }
                    _ => break,
                }
            }
            saw_init
        });
        let out = serve_cells(listener, &plan(), &[5, 6], None, None, &cfg).unwrap();
        assert!(worker.join().unwrap(), "the keyed worker was sent init");
        assert!(out.unfinished.is_empty(), "{:?}", out.summary);
        assert_eq!(
            out.payloads[0].as_ref().and_then(|p| p.get("cell")).and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(out.summary.workers_spawned, 1);
    }

    /// A raw scripted peer: says hello, waits for its first cell
    /// assignment, and drops the connection — the worker-died-mid-cell
    /// case, without the real client's reconnect masking it.
    fn flaky_once(addr: String, name: &'static str) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let mut s = TcpStream::connect(&addr).unwrap();
            writeln!(
                s,
                "{{\"schema\":\"rix-dispatch/2\",\"type\":\"hello\",\"name\":\"{name}\",\"role\":\"worker\"}}"
            )
            .unwrap();
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let mut line = String::new();
            loop {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    break;
                }
                if line.contains("\"type\":\"cell\"") {
                    break; // drop with the cell in flight
                }
            }
        })
    }

    #[test]
    fn mid_cell_disconnect_requeues_on_a_healthy_peer() {
        let (listener, addr) = listen();
        let flaky = flaky_once(addr.clone(), "flaky");
        let steady = {
            let addr = addr.clone();
            std::thread::spawn(move || connect_worker(&addr, "steady", &fast_backoff(), echo))
        };
        let cells: Vec<u64> = vec![10, 11, 12, 13];
        let out = serve_cells(listener, &plan(), &cells, None, None, &fast_cfg()).unwrap();
        assert!(out.unfinished.is_empty(), "{:?}", out.summary);
        for (cell, payload) in cells.iter().zip(&out.payloads) {
            assert_eq!(
                payload.as_ref().and_then(|p| p.get("cell")).and_then(Json::as_u64),
                Some(*cell)
            );
        }
        assert_eq!(out.summary.workers_lost, 1, "{:?}", out.summary);
        assert_eq!(out.summary.retries, 1, "{:?}", out.summary);
        let f = out.summary.workers.iter().find(|w| w.name == "flaky").unwrap();
        assert_eq!(f.failures, 1);
        assert!(!f.quarantined, "one failure is below the threshold");
        flaky.join().unwrap();
        assert_eq!(steady.join().unwrap(), 0);
    }

    #[test]
    fn repeat_offender_is_quarantined_and_its_cells_drain_elsewhere() {
        let (listener, addr) = listen();
        // A peer that drops every cell it is handed, reconnecting each
        // time like the real client would.
        let bad = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                loop {
                    let Ok(mut s) = TcpStream::connect(&addr) else { return };
                    if writeln!(
                        s,
                        "{{\"schema\":\"rix-dispatch/2\",\"type\":\"hello\",\"name\":\"bad\",\"role\":\"worker\"}}"
                    )
                    .is_err()
                    {
                        return;
                    }
                    let Ok(clone) = s.try_clone() else { return };
                    let mut reader = BufReader::new(clone);
                    let mut line = String::new();
                    loop {
                        line.clear();
                        if reader.read_line(&mut line).unwrap_or(0) == 0 {
                            return; // coordinator closed on us: give up
                        }
                        if line.contains("\"type\":\"quarantine\"") {
                            return;
                        }
                        if line.contains("\"type\":\"cell\"") {
                            break; // drop mid-cell, then reconnect
                        }
                    }
                }
            })
        };
        // The healthy peer is slowed so the queue cannot drain before
        // `bad` has failed often enough to trip the threshold.
        let steady = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                connect_worker(&addr, "steady", &fast_backoff(), |init, cell| {
                    std::thread::sleep(Duration::from_millis(100));
                    echo(init, cell)
                })
            })
        };
        let cfg = NetPoolConfig { quarantine_after: 2, retries: 4, ..fast_cfg() };
        let cells: Vec<u64> = vec![20, 21, 22, 23, 24, 25];
        let out = serve_cells(listener, &plan(), &cells, None, None, &cfg).unwrap();
        assert!(out.unfinished.is_empty(), "{:?}", out.summary);
        assert_eq!(out.summary.quarantined, 1, "{:?}", out.summary);
        let b = out.summary.workers.iter().find(|w| w.name == "bad").unwrap();
        assert!(b.quarantined);
        assert!(b.failures >= 2);
        bad.join().unwrap();
        assert_eq!(steady.join().unwrap(), 0);
    }

    #[test]
    fn status_hello_is_answered_during_a_run() {
        let (listener, addr) = listen();
        let cells: Vec<u64> = vec![0, 1];
        let server = {
            let p = plan();
            std::thread::spawn(move || serve_cells(listener, &p, &cells, None, None, &fast_cfg()))
        };
        // Query while the run waits for workers.
        let doc = query_status(&addr).unwrap();
        assert_eq!(doc.req_u64("cells_total").unwrap(), 2);
        assert_eq!(doc.req_u64("cells_done").unwrap(), 0);
        // Now provide a worker so the run can finish.
        let w = std::thread::spawn(move || connect_worker(&addr, "late", &fast_backoff(), echo));
        let out = server.join().unwrap().unwrap();
        assert!(out.unfinished.is_empty());
        assert!(w.join().unwrap() <= 2);
    }

    #[test]
    fn remote_cache_dance_serves_hits_and_collects_stores() {
        let dir = std::env::temp_dir()
            .join(format!("rix-net-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let keys: Vec<String> = (0..3).map(|i| ResultCache::key(&format!("cell {i}"))).collect();
        // Pre-seed one entry: the worker must get it as a hit and skip
        // execution for that cell.
        cache.store(&keys[1], &Json::parse(r#"{"cell":101}"#).unwrap()).unwrap();

        let (listener, addr) = listen();
        let w = std::thread::spawn(move || {
            connect_worker(&addr, "cached", &fast_backoff(), |_, cell| {
                assert_ne!(cell, 101, "the pre-seeded cell must not execute");
                echo(&Json::Null, cell)
            })
        });
        let cells: Vec<u64> = vec![100, 101, 102];
        let out =
            serve_cells(listener, &plan(), &cells, Some(&keys), Some(&cache), &fast_cfg())
                .unwrap();
        assert!(out.unfinished.is_empty());
        assert_eq!(out.summary.cache_hits, 1, "{:?}", out.summary);
        for (cell, payload) in cells.iter().zip(&out.payloads) {
            assert_eq!(
                payload.as_ref().and_then(|p| p.get("cell")).and_then(Json::as_u64),
                Some(*cell)
            );
        }
        // The misses were stored back: every key now loads.
        for key in &keys {
            assert!(cache.load(key).is_some(), "store-back missing for {key}");
        }
        assert_eq!(w.join().unwrap(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
