//! 128-bit FNV-1a, the workspace's content-hash for cache keys and
//! spec fingerprints.
//!
//! The 64-bit FNV-1a used by `rix-ckpt/1` program hashes and the
//! original `rix-exp/1` fingerprint is fine for *naming* things a human
//! cross-checks, but a content-addressed cache turns hash collisions
//! into silently wrong results. The 128-bit variant (standard FNV-1a
//! offset/prime) with the input length folded in at the end makes
//! accidental collisions implausible while staying dependency-free and
//! byte-stable across platforms.

/// 128-bit FNV-1a offset basis.
pub const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime (2^88 + 2^8 + 0x3b).
pub const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// 128-bit FNV-1a over `bytes`, with the byte count folded in after the
/// data (length mixing: a trailing-truncation corruption changes the
/// hash even when the dropped suffix was all zero bytes).
#[must_use]
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = FNV128_OFFSET;
    for &b in bytes {
        h = (h ^ u128::from(b)).wrapping_mul(FNV128_PRIME);
    }
    for b in (bytes.len() as u64).to_le_bytes() {
        h = (h ^ u128::from(b)).wrapping_mul(FNV128_PRIME);
    }
    h
}

/// [`fnv128`] as the fixed-width 32-hex-digit string used for cache
/// file names and fingerprint fields.
#[must_use]
pub fn fnv128_hex(bytes: &[u8]) -> String {
    format!("{:032x}", fnv128(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_inputs_distinct_hashes() {
        let inputs: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"b".to_vec(),
            b"ab".to_vec(),
            b"ba".to_vec(),
            b"a\0".to_vec(),
            b"\0a".to_vec(),
            vec![0],
            vec![0, 0],
            vec![0, 0, 0],
        ];
        let hashes: std::collections::HashSet<u128> =
            inputs.iter().map(|i| fnv128(i)).collect();
        assert_eq!(hashes.len(), inputs.len(), "no collisions among the probes");
    }

    #[test]
    fn length_mixing_separates_zero_padded_prefixes() {
        // Plain FNV-1a maps any all-zero input to offset * prime^n; the
        // length fold must keep truncations apart even there.
        assert_ne!(fnv128(&[0u8; 4]), fnv128(&[0u8; 8]));
    }

    #[test]
    fn hex_is_fixed_width_and_stable() {
        let h = fnv128_hex(b"rix");
        assert_eq!(h.len(), 32);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(h, fnv128_hex(b"rix"), "deterministic");
        // Pin the value: the cache's on-disk names must never drift
        // across refactors without a schema bump.
        assert_eq!(fnv128(b""), {
            let mut h = FNV128_OFFSET;
            for b in 0u64.to_le_bytes() {
                h = (h ^ u128::from(b)).wrapping_mul(FNV128_PRIME);
            }
            h
        });
    }
}
