//! The coordinator: a pool of worker processes fed one cell at a time.
//!
//! [`dispatch_cells`] spawns `workers` processes (by default
//! `current_exe()` with the [`crate::WORKER_ARG`] argument, overridable
//! for tests), sends each an `init` message carrying the plan, then
//! streams cell assignments and collects result payloads. Every worker
//! holds at most one in-flight cell; a reader thread per worker drains
//! its stdout into one mpsc channel, so the coordinator's single event
//! loop sees results, worker deaths (EOF) and per-cell deadline expiry
//! in arrival order and a verbose worker can never dead-lock the pipe.
//!
//! This is the *process* pool (stdio transport). The *socket* pool —
//! remote workers over TCP, with heartbeats, reconnects, quarantine and
//! graceful degradation — lives in [`crate::net`] and shares this
//! module's [`PoolSummary`] / [`PoolError`] accounting.
//!
//! See the [crate docs](crate) for the wire protocol and fault model.

use rix_isa::json::Json;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Tuning for one [`dispatch_cells`] run.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Worker processes to spawn (clamped to at least 1 and at most the
    /// number of cells).
    pub workers: usize,
    /// Deadline per cell assignment; a worker that exceeds it is
    /// presumed hung, killed, and its cell retried elsewhere.
    pub cell_timeout: Duration,
    /// How many times one cell may be *retried* after a worker death or
    /// timeout (so a cell runs at most `retries + 1` times).
    pub retries: u32,
    /// The worker command as `(program, args)`. `None` self-execs:
    /// `current_exe()` with the single argument [`crate::WORKER_ARG`].
    pub worker_cmd: Option<(std::path::PathBuf, Vec<String>)>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            cell_timeout: Duration::from_secs(300),
            retries: 2,
            worker_cmd: None,
        }
    }
}

/// Per-worker accounting inside a [`PoolSummary`] — one row per worker
/// process (stdio pool) or per named remote peer across all of its
/// connections (socket pool).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// `proc-N` for spawned processes; the hello-declared name for
    /// remote peers.
    pub name: String,
    /// Still connected/alive when the run ended.
    pub connected: bool,
    /// Cells this worker completed.
    pub cells_completed: u64,
    /// Cell losses attributed to this worker (death, deadline, or
    /// liveness expiry with a cell in flight).
    pub failures: u64,
    /// Reconnections beyond the first connection (socket pool only).
    pub reconnects: u64,
    /// Quarantined after too many consecutive failures (socket pool
    /// only — a dead stdio worker is simply gone).
    pub quarantined: bool,
}

impl WorkerStat {
    /// One table row for status displays: `name  state  cells failures
    /// reconnects`.
    #[must_use]
    pub fn state(&self) -> &'static str {
        if self.quarantined {
            "quarantined"
        } else if self.connected {
            "live"
        } else {
            "lost"
        }
    }
}

/// What a pool run did, beyond the results: fodder for stderr
/// reporting (never for result documents, which must stay byte-stable
/// across worker counts and fault histories).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolSummary {
    /// Worker processes spawned (stdio pool) or distinct peers that
    /// connected (socket pool).
    pub workers_spawned: usize,
    /// Workers lost to death, deadline, or heartbeat-liveness expiry
    /// during the run.
    pub workers_lost: usize,
    /// Cell assignments retried after a loss.
    pub retries: u64,
    /// Results served from the coordinator's cache over the wire
    /// (socket pool with a remote-backed cache).
    pub cache_hits: u64,
    /// Cells handed back to the caller to finish in-process after
    /// remote capacity was lost or a retry budget was spent (socket
    /// pool's graceful degradation).
    pub degraded_cells: u64,
    /// Peers quarantined for consecutive failures (socket pool).
    pub quarantined: usize,
    /// Per-worker detail, in a deterministic (name) order.
    pub workers: Vec<WorkerStat>,
}

/// A pool failure: what went wrong, which cell it is attributable to
/// (when one is), and the fault history that led there — so "cell 5
/// exhausted its retry budget" arrives with the three worker deaths
/// that spent it. Callers that can map cell ids back to meaningful
/// work units (benchmark / seed / arm label) should re-render with
/// [`PoolError::with_cell_description`].
#[derive(Clone, Debug)]
pub struct PoolError {
    /// The cell whose fate failed the run, when attributable.
    pub cell: Option<u64>,
    /// The fault events that led here, oldest first.
    pub history: Vec<String>,
    /// The failure itself.
    pub message: String,
}

impl PoolError {
    /// An error with no attributable cell.
    pub fn msg(message: impl Into<String>) -> Self {
        Self { cell: None, history: Vec::new(), message: message.into() }
    }

    /// Re-renders the message with a caller-supplied description of the
    /// failing cell (e.g. `gcc/integration (seed 7)`).
    #[must_use]
    pub fn with_cell_description(mut self, describe: impl Fn(u64) -> Option<String>) -> Self {
        if let Some(desc) = self.cell.and_then(describe) {
            self.message = format!("{desc}: {}", self.message);
        }
        self
    }
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.cell {
            Some(cell) => write!(f, "cell {cell}: {}", self.message)?,
            None => write!(f, "{}", self.message)?,
        }
        if !self.history.is_empty() {
            write!(f, "; fault history: {}", self.history.join("; "))?;
        }
        Ok(())
    }
}

/// The shared cell bookkeeping of both pools: the work queue, per-cell
/// attempt counts and fault histories, and the filled results.
pub(crate) struct CellLedger<'a> {
    pub cells: &'a [u64],
    pub queue: VecDeque<usize>,
    pub attempts: Vec<u32>,
    /// Per-cell fault events (worker deaths, deadline hits), oldest
    /// first — surfaced in [`PoolError`] and degradation notes.
    pub history: Vec<Vec<String>>,
    pub results: Vec<Option<Json>>,
    pub done: usize,
    pub started: Instant,
}

impl<'a> CellLedger<'a> {
    pub fn new(cells: &'a [u64]) -> Self {
        Self {
            cells,
            queue: (0..cells.len()).collect(),
            attempts: vec![0; cells.len()],
            history: vec![Vec::new(); cells.len()],
            results: vec![None; cells.len()],
            done: 0,
            started: Instant::now(),
        }
    }

    /// Records a fault event against cell `pos`, stamped with the time
    /// since the run started.
    pub fn record(&mut self, pos: usize, event: &str) {
        let t = self.started.elapsed();
        self.history[pos].push(format!("[t+{:.1}s] {event}", t.as_secs_f64()));
    }

    /// Fills cell `pos` with `payload` (first writer wins).
    pub fn complete(&mut self, pos: usize, payload: Json) {
        if self.results[pos].is_none() {
            self.results[pos] = Some(payload);
            self.done += 1;
        }
    }

    /// Puts a lost cell back at the front of the queue; `Err(())` when
    /// its retry budget is spent (the caller decides whether that is
    /// fatal or a degradation).
    pub fn requeue(&mut self, pos: usize, retries: u32, summary: &mut PoolSummary) -> Result<(), ()> {
        self.attempts[pos] += 1;
        if self.attempts[pos] > retries {
            return Err(());
        }
        summary.retries += 1;
        self.queue.push_front(pos);
        Ok(())
    }

    /// The [`PoolError`] for cell `pos` exhausting its retry budget.
    pub fn budget_error(&self, pos: usize, retries: u32) -> PoolError {
        PoolError {
            cell: Some(self.cells[pos]),
            history: self.history[pos].clone(),
            message: format!(
                "lost its worker {} times (retry budget {retries}); giving up",
                self.attempts[pos],
            ),
        }
    }
}

enum Event {
    /// One stdout line from worker `idx`.
    Line(usize, String),
    /// Worker `idx`'s stdout closed (exit, crash, or our kill).
    Eof(usize),
}

struct WorkerSlot {
    child: Child,
    stdin: Option<ChildStdin>,
    /// `(position in `cells`, deadline)` of the in-flight assignment.
    busy: Option<(usize, Instant)>,
    alive: bool,
    cells_completed: u64,
    failures: u64,
}

/// Runs every entry of `cells` on the worker pool and returns the
/// payloads in `cells` order, plus a [`PoolSummary`].
///
/// Fails on: an unspawnable worker command, a worker-reported `error`
/// (deterministic, so never retried), a protocol violation, a cell
/// exhausting its retry budget, or every worker dying with work left.
/// The error names the failing cell and carries its fault history when
/// one is attributable.
pub fn dispatch_cells(
    plan: &Json,
    cells: &[u64],
    cfg: &PoolConfig,
) -> Result<(Vec<Json>, PoolSummary), PoolError> {
    let mut summary = PoolSummary::default();
    if cells.is_empty() {
        return Ok((Vec::new(), summary));
    }
    let nworkers = cfg.workers.clamp(1, cells.len());
    let (exe, args) = match &cfg.worker_cmd {
        Some((exe, args)) => (exe.clone(), args.clone()),
        None => {
            let exe = std::env::current_exe().map_err(|e| {
                PoolError::msg(format!("cannot locate this executable to self-exec workers: {e}"))
            })?;
            (exe, vec![crate::WORKER_ARG.to_string()])
        }
    };
    let plan_line = plan.dump();
    let (tx, rx) = mpsc::channel::<Event>();
    let mut slots: Vec<WorkerSlot> = Vec::with_capacity(nworkers);
    for w in 0..nworkers {
        match spawn_worker(&exe, &args, w, &plan_line, &tx) {
            Ok(slot) => slots.push(slot),
            Err(e) => {
                kill_all(&mut slots);
                return Err(PoolError::msg(e));
            }
        }
    }
    summary.workers_spawned = nworkers;

    let mut ledger = CellLedger::new(cells);

    let out = loop {
        if ledger.done == cells.len() {
            break Ok(());
        }
        // Feed every idle surviving worker.
        for slot in &mut slots {
            if !(slot.alive && slot.busy.is_none()) {
                continue;
            }
            let Some(pos) = ledger.queue.pop_front() else { break };
            let line = format!("{{\"type\":\"cell\",\"cell\":{}}}", cells[pos]);
            let sent = slot
                .stdin
                .as_mut()
                .is_some_and(|s| writeln!(s, "{line}").and_then(|()| s.flush()).is_ok());
            if sent {
                slot.busy = Some((pos, Instant::now() + cfg.cell_timeout));
            } else {
                // The pipe is gone: the worker died between assignments.
                // Put the cell back (it never ran — no attempt charged)
                // and retire the worker; its EOF event is already in
                // flight and will find `busy` empty.
                ledger.queue.push_front(pos);
                let _ = slot.child.kill();
                slot.alive = false;
                summary.workers_lost += 1;
            }
        }
        if !slots.iter().any(|s| s.alive) {
            break Err(PoolError::msg(format!(
                "all {nworkers} workers died with {} of {} cells unfinished \
                 ({} lost, {} retries used)",
                cells.len() - ledger.done,
                cells.len(),
                summary.workers_lost,
                summary.retries,
            )));
        }
        // Sleep until the next event or the nearest deadline, bounded
        // so a missed wakeup can never stall the loop for long.
        let now = Instant::now();
        let wait = slots
            .iter()
            .filter_map(|s| s.busy.map(|(_, d)| d))
            .min()
            .map_or(Duration::from_millis(500), |d| {
                d.saturating_duration_since(now).min(Duration::from_millis(500))
            });
        match rx.recv_timeout(wait) {
            Ok(Event::Line(w, line)) => {
                if let Err(e) = handle_line(&mut slots[w], w, &line, &mut ledger) {
                    break Err(e);
                }
            }
            Ok(Event::Eof(w)) => {
                let slot = &mut slots[w];
                if slot.alive {
                    slot.alive = false;
                    summary.workers_lost += 1;
                    let _ = slot.child.kill();
                    if let Some((pos, _)) = slot.busy.take() {
                        slot.failures += 1;
                        ledger.record(pos, &format!("worker proc-{w} died with the cell in flight"));
                        if ledger.requeue(pos, cfg.retries, &mut summary).is_err() {
                            break Err(ledger.budget_error(pos, cfg.retries));
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Unreachable while `tx` lives in this scope; treat it
                // as every worker gone.
                break Err(PoolError::msg("worker event channel closed unexpectedly"));
            }
        }
        // Deadline sweep: kill hung workers and retry their cells.
        let now = Instant::now();
        let mut sweep_err = None;
        for (w, slot) in slots.iter_mut().enumerate() {
            let Some((pos, deadline)) = slot.busy else { continue };
            if slot.alive && now >= deadline {
                let _ = slot.child.kill();
                slot.alive = false;
                slot.busy = None;
                slot.failures += 1;
                summary.workers_lost += 1;
                ledger.record(
                    pos,
                    &format!(
                        "worker proc-{w} exceeded the {:.0}s cell deadline (presumed hung)",
                        cfg.cell_timeout.as_secs_f64()
                    ),
                );
                if ledger.requeue(pos, cfg.retries, &mut summary).is_err() {
                    sweep_err = Some(ledger.budget_error(pos, cfg.retries));
                    break;
                }
            }
        }
        if let Some(e) = sweep_err {
            break Err(e);
        }
    };
    summary.workers = slots
        .iter()
        .enumerate()
        .map(|(w, s)| WorkerStat {
            name: format!("proc-{w}"),
            connected: s.alive,
            cells_completed: s.cells_completed,
            failures: s.failures,
            reconnects: 0,
            quarantined: false,
        })
        .collect();
    match out {
        Ok(()) => {
            shutdown(&mut slots);
            let payloads = ledger
                .results
                .into_iter()
                .map(|r| r.ok_or_else(|| PoolError::msg("internal: unfilled result slot")))
                .collect::<Result<Vec<Json>, PoolError>>()?;
            Ok((payloads, summary))
        }
        Err(e) => fail(slots, e),
    }
}

fn fail(mut slots: Vec<WorkerSlot>, e: PoolError) -> Result<(Vec<Json>, PoolSummary), PoolError> {
    kill_all(&mut slots);
    Err(e)
}

/// One worker stdout line: a `result` fills its slot, an `error` fails
/// the run. Lines from workers already retired (killed on deadline, but
/// their reader thread had buffered output) are dropped.
fn handle_line(
    slot: &mut WorkerSlot,
    w: usize,
    line: &str,
    ledger: &mut CellLedger<'_>,
) -> Result<(), PoolError> {
    if !slot.alive {
        return Ok(());
    }
    let msg = Json::parse(line)
        .map_err(|e| PoolError::msg(format!("worker {w}: unparsable protocol line {line:?}: {e}")))?;
    match msg.get("type").and_then(Json::as_str) {
        Some("result") => {
            let cell = msg.req_u64("cell").map_err(|e| PoolError::msg(format!("worker {w}: {e}")))?;
            let payload = msg
                .req("payload")
                .map_err(|e| PoolError::msg(format!("worker {w}: {e}")))?
                .clone();
            match slot.busy {
                Some((pos, _)) if ledger.cells[pos] == cell => {
                    slot.busy = None;
                    slot.cells_completed += 1;
                    ledger.complete(pos, payload);
                    Ok(())
                }
                _ => Err(PoolError::msg(format!(
                    "worker {w}: result for cell {cell} it was not assigned"
                ))),
            }
        }
        Some("error") => {
            let cell = msg.get("cell").and_then(Json::as_u64);
            let message = msg
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("(no message)");
            Err(PoolError {
                cell,
                history: cell
                    .and_then(|c| ledger.cells.iter().position(|&x| x == c))
                    .map(|pos| ledger.history[pos].clone())
                    .unwrap_or_default(),
                message: format!("worker {w} reported: {message}"),
            })
        }
        other => Err(PoolError::msg(format!(
            "worker {w}: unexpected protocol message type {other:?} in {line:?}"
        ))),
    }
}

fn spawn_worker(
    exe: &std::path::Path,
    args: &[String],
    w: usize,
    plan_line: &str,
    tx: &mpsc::Sender<Event>,
) -> Result<WorkerSlot, String> {
    let mut child = Command::new(exe)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        // stderr inherited: worker diagnostics surface on the
        // coordinator's stderr.
        .spawn()
        .map_err(|e| format!("cannot spawn worker `{}`: {e}", exe.display()))?;
    let mut stdin = child
        .stdin
        .take()
        .ok_or_else(|| "worker stdin was not piped".to_string())?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| "worker stdout was not piped".to_string())?;
    let tx = tx.clone();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => {
                    let _ = tx.send(Event::Eof(w));
                    break;
                }
                Ok(_) => {
                    let _ = tx.send(Event::Line(w, line.trim_end().to_string()));
                }
            }
        }
    });
    // An init failure here just means the worker died at birth; its EOF
    // event reports it, so the write result is advisory.
    let init = format!(
        "{{\"schema\":\"{}\",\"type\":\"init\",\"worker\":{w},\"heartbeat_ms\":0,\
         \"cache\":false,\"plan\":{plan_line}}}",
        crate::PROTOCOL_SCHEMA
    );
    let _ = writeln!(stdin, "{init}").and_then(|()| stdin.flush());
    Ok(WorkerSlot {
        child,
        stdin: Some(stdin),
        busy: None,
        alive: true,
        cells_completed: 0,
        failures: 0,
    })
}

/// Graceful shutdown of the survivors: closing stdin EOFs the worker's
/// serve loop, which exits cleanly; `wait` reaps it (and anything
/// already killed).
fn shutdown(slots: &mut [WorkerSlot]) {
    for slot in slots.iter_mut() {
        drop(slot.stdin.take());
    }
    for slot in slots {
        let _ = slot.child.wait();
    }
}

fn kill_all(slots: &mut [WorkerSlot]) {
    for slot in slots.iter_mut() {
        let _ = slot.child.kill();
        drop(slot.stdin.take());
    }
    for slot in slots {
        let _ = slot.child.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A POSIX-sh stand-in worker: answers every `cell` assignment with
    /// a `result` whose payload echoes the cell id — enough to test the
    /// pool's scheduling, merging and fault handling without dragging a
    /// simulator in.
    const SH_ECHO_WORKER: &str = r#"
while IFS= read -r line; do
  case "$line" in
    *'"type":"cell"'*)
      c=${line##*\"cell\":}; c=${c%%\}*}
      printf '{"type":"result","cell":%s,"payload":{"cell":%s}}\n' "$c" "$c"
      ;;
  esac
done
"#;

    fn sh_cmd(script: &str) -> Option<(std::path::PathBuf, Vec<String>)> {
        Some(("sh".into(), vec!["-c".into(), script.into()]))
    }

    fn plan() -> Json {
        Json::parse(r#"{"note":"test plan"}"#).unwrap()
    }

    #[test]
    fn results_come_back_in_cell_order() {
        let cells: Vec<u64> = vec![3, 1, 4, 1_000_000, 9];
        for workers in [1usize, 2, 4, 8] {
            let cfg = PoolConfig { workers, worker_cmd: sh_cmd(SH_ECHO_WORKER), ..PoolConfig::default() };
            let (payloads, summary) = dispatch_cells(&plan(), &cells, &cfg).unwrap();
            assert_eq!(payloads.len(), cells.len());
            for (cell, payload) in cells.iter().zip(&payloads) {
                assert_eq!(payload.get("cell").and_then(Json::as_u64), Some(*cell));
            }
            assert_eq!(summary.workers_spawned, workers.min(cells.len()));
            assert_eq!(summary.workers_lost, 0);
            assert_eq!(summary.retries, 0);
            assert_eq!(summary.workers.len(), summary.workers_spawned);
            let total: u64 = summary.workers.iter().map(|w| w.cells_completed).sum();
            assert_eq!(total, cells.len() as u64, "per-worker counts add up");
        }
    }

    #[test]
    fn empty_cell_list_spawns_nothing() {
        let cfg = PoolConfig { worker_cmd: sh_cmd(SH_ECHO_WORKER), ..PoolConfig::default() };
        let (payloads, summary) = dispatch_cells(&plan(), &[], &cfg).unwrap();
        assert!(payloads.is_empty());
        assert_eq!(summary.workers_spawned, 0);
    }

    #[test]
    fn dead_worker_cells_are_retried_on_survivors() {
        // Worker 0 exits as soon as it is assigned a cell; worker 1
        // serves normally. Every cell must still complete.
        let script = r#"
read -r init
case "$init" in *'"worker":0'*) die=1;; *) die=0;; esac
while IFS= read -r line; do
  case "$line" in
    *'"type":"cell"'*)
      [ "$die" = 1 ] && exit 7
      c=${line##*\"cell\":}; c=${c%%\}*}
      printf '{"type":"result","cell":%s,"payload":{"cell":%s}}\n' "$c" "$c"
      ;;
  esac
done
"#;
        let cells: Vec<u64> = (0..6).collect();
        let cfg = PoolConfig { workers: 2, worker_cmd: sh_cmd(script), ..PoolConfig::default() };
        let (payloads, summary) = dispatch_cells(&plan(), &cells, &cfg).unwrap();
        for (cell, payload) in cells.iter().zip(&payloads) {
            assert_eq!(payload.get("cell").and_then(Json::as_u64), Some(*cell));
        }
        assert_eq!(summary.workers_lost, 1);
        assert!(summary.retries >= 1, "{summary:?}");
        let dead = summary.workers.iter().find(|w| w.name == "proc-0").unwrap();
        assert!(!dead.connected && dead.failures >= 1, "{dead:?}");
    }

    #[test]
    fn hung_worker_hits_the_deadline_and_all_dead_is_an_error() {
        // The worker reads assignments and never answers; with one
        // worker the pool must detect the hang and fail descriptively.
        let script = "while IFS= read -r line; do :; done";
        let cfg = PoolConfig {
            workers: 1,
            cell_timeout: Duration::from_millis(100),
            retries: 1,
            worker_cmd: sh_cmd(script),
        };
        let err = dispatch_cells(&plan(), &[0], &cfg).unwrap_err().to_string();
        assert!(err.contains("workers died"), "{err}");
    }

    #[test]
    fn budget_exhaustion_names_the_cell_and_its_fault_history() {
        // Two hang-forever workers, zero retries, a short deadline: the
        // first deadline expiry spends cell 0's budget, and the error
        // must name the cell and carry the deadline event.
        let script = "while IFS= read -r line; do :; done";
        let cfg = PoolConfig {
            workers: 2,
            cell_timeout: Duration::from_millis(100),
            retries: 0,
            worker_cmd: sh_cmd(script),
        };
        let err = dispatch_cells(&plan(), &[41, 42, 43], &cfg).unwrap_err();
        assert!(err.cell.is_some(), "{err}");
        assert!(!err.history.is_empty(), "history travels with the error: {err}");
        let text = err.to_string();
        assert!(text.contains("fault history"), "{text}");
        assert!(text.contains("deadline"), "{text}");
        // The caller can re-render the cell as a meaningful label.
        let described = err.with_cell_description(|c| Some(format!("bench-{c}/arm"))).to_string();
        assert!(described.contains("/arm"), "{described}");
    }

    #[test]
    fn worker_error_is_fatal_not_retried() {
        let script = r#"
while IFS= read -r line; do
  case "$line" in
    *'"type":"cell"'*)
      printf '{"type":"error","cell":0,"message":"deterministic failure"}\n'
      ;;
  esac
done
"#;
        let cfg = PoolConfig { workers: 1, worker_cmd: sh_cmd(script), ..PoolConfig::default() };
        let err = dispatch_cells(&plan(), &[0, 1], &cfg).unwrap_err().to_string();
        assert!(err.contains("deterministic failure"), "{err}");
    }

    #[test]
    fn unspawnable_worker_command_is_an_error() {
        let cfg = PoolConfig {
            worker_cmd: Some(("/nonexistent/rix-worker".into(), vec![])),
            ..PoolConfig::default()
        };
        let err = dispatch_cells(&plan(), &[0], &cfg).unwrap_err().to_string();
        assert!(err.contains("cannot spawn worker"), "{err}");
    }
}
