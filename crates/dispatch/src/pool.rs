//! The coordinator: a pool of worker processes fed one cell at a time.
//!
//! [`dispatch_cells`] spawns `workers` processes (by default
//! `current_exe()` with the [`crate::WORKER_ARG`] argument, overridable
//! for tests), sends each an `init` message carrying the plan, then
//! streams cell assignments and collects result payloads. Every worker
//! holds at most one in-flight cell; a reader thread per worker drains
//! its stdout into one mpsc channel, so the coordinator's single event
//! loop sees results, worker deaths (EOF) and per-cell deadline expiry
//! in arrival order and a verbose worker can never dead-lock the pipe.
//!
//! See the [crate docs](crate) for the wire protocol and fault model.

use rix_isa::json::Json;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Tuning for one [`dispatch_cells`] run.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Worker processes to spawn (clamped to at least 1 and at most the
    /// number of cells).
    pub workers: usize,
    /// Deadline per cell assignment; a worker that exceeds it is
    /// presumed hung, killed, and its cell retried elsewhere.
    pub cell_timeout: Duration,
    /// How many times one cell may be *retried* after a worker death or
    /// timeout (so a cell runs at most `retries + 1` times).
    pub retries: u32,
    /// The worker command as `(program, args)`. `None` self-execs:
    /// `current_exe()` with the single argument [`crate::WORKER_ARG`].
    pub worker_cmd: Option<(std::path::PathBuf, Vec<String>)>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            cell_timeout: Duration::from_secs(300),
            retries: 2,
            worker_cmd: None,
        }
    }
}

/// What a pool run did, beyond the results: fodder for stderr
/// reporting (never for result documents, which must stay byte-stable
/// across worker counts and fault histories).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolSummary {
    /// Worker processes spawned.
    pub workers_spawned: usize,
    /// Workers lost to death or deadline during the run.
    pub workers_lost: usize,
    /// Cell assignments retried after a loss.
    pub retries: u64,
}

enum Event {
    /// One stdout line from worker `idx`.
    Line(usize, String),
    /// Worker `idx`'s stdout closed (exit, crash, or our kill).
    Eof(usize),
}

struct WorkerSlot {
    child: Child,
    stdin: Option<ChildStdin>,
    /// `(position in `cells`, deadline)` of the in-flight assignment.
    busy: Option<(usize, Instant)>,
    alive: bool,
}

/// Runs every entry of `cells` on the worker pool and returns the
/// payloads in `cells` order, plus a [`PoolSummary`].
///
/// Fails on: an unspawnable worker command, a worker-reported `error`
/// (deterministic, so never retried), a protocol violation, a cell
/// exhausting its retry budget, or every worker dying with work left.
pub fn dispatch_cells(
    plan: &Json,
    cells: &[u64],
    cfg: &PoolConfig,
) -> Result<(Vec<Json>, PoolSummary), String> {
    let mut summary = PoolSummary::default();
    if cells.is_empty() {
        return Ok((Vec::new(), summary));
    }
    let nworkers = cfg.workers.clamp(1, cells.len());
    let (exe, args) = match &cfg.worker_cmd {
        Some((exe, args)) => (exe.clone(), args.clone()),
        None => {
            let exe = std::env::current_exe()
                .map_err(|e| format!("cannot locate this executable to self-exec workers: {e}"))?;
            (exe, vec![crate::WORKER_ARG.to_string()])
        }
    };
    let plan_line = plan.dump();
    let (tx, rx) = mpsc::channel::<Event>();
    let mut slots: Vec<WorkerSlot> = Vec::with_capacity(nworkers);
    for w in 0..nworkers {
        match spawn_worker(&exe, &args, w, &plan_line, &tx) {
            Ok(slot) => slots.push(slot),
            Err(e) => {
                kill_all(&mut slots);
                return Err(e);
            }
        }
    }
    summary.workers_spawned = nworkers;

    let mut queue: VecDeque<usize> = (0..cells.len()).collect();
    let mut attempts: Vec<u32> = vec![0; cells.len()];
    let mut results: Vec<Option<Json>> = vec![None; cells.len()];
    let mut done = 0usize;

    let out = loop {
        if done == cells.len() {
            break Ok(());
        }
        // Feed every idle surviving worker.
        for slot in &mut slots {
            if !(slot.alive && slot.busy.is_none()) {
                continue;
            }
            let Some(pos) = queue.pop_front() else { break };
            let line = format!("{{\"type\":\"cell\",\"cell\":{}}}", cells[pos]);
            let sent = slot
                .stdin
                .as_mut()
                .is_some_and(|s| writeln!(s, "{line}").and_then(|()| s.flush()).is_ok());
            if sent {
                slot.busy = Some((pos, Instant::now() + cfg.cell_timeout));
            } else {
                // The pipe is gone: the worker died between assignments.
                // Put the cell back (it never ran — no attempt charged)
                // and retire the worker; its EOF event is already in
                // flight and will find `busy` empty.
                queue.push_front(pos);
                let _ = slot.child.kill();
                slot.alive = false;
                summary.workers_lost += 1;
            }
        }
        if !slots.iter().any(|s| s.alive) {
            break Err(format!(
                "all {nworkers} workers died with {} of {} cells unfinished \
                 ({} lost, {} retries used)",
                cells.len() - done,
                cells.len(),
                summary.workers_lost,
                summary.retries,
            ));
        }
        // Sleep until the next event or the nearest deadline, bounded
        // so a missed wakeup can never stall the loop for long.
        let now = Instant::now();
        let wait = slots
            .iter()
            .filter_map(|s| s.busy.map(|(_, d)| d))
            .min()
            .map_or(Duration::from_millis(500), |d| {
                d.saturating_duration_since(now).min(Duration::from_millis(500))
            });
        match rx.recv_timeout(wait) {
            Ok(Event::Line(w, line)) => {
                if let Err(e) = handle_line(
                    &mut slots[w],
                    w,
                    &line,
                    cells,
                    &mut results,
                    &mut done,
                ) {
                    break Err(e);
                }
            }
            Ok(Event::Eof(w)) => {
                let slot = &mut slots[w];
                if slot.alive {
                    slot.alive = false;
                    summary.workers_lost += 1;
                    let _ = slot.child.kill();
                    if let Some((pos, _)) = slot.busy.take() {
                        if let Err(e) =
                            requeue(pos, cells, &mut attempts, &mut queue, &mut summary, cfg)
                        {
                            break Err(e);
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Unreachable while `tx` lives in this scope; treat it
                // as every worker gone.
                break Err("worker event channel closed unexpectedly".to_string());
            }
        }
        // Deadline sweep: kill hung workers and retry their cells.
        let now = Instant::now();
        let mut sweep_err = None;
        for slot in &mut slots {
            let Some((pos, deadline)) = slot.busy else { continue };
            if slot.alive && now >= deadline {
                let _ = slot.child.kill();
                slot.alive = false;
                slot.busy = None;
                summary.workers_lost += 1;
                if let Err(e) =
                    requeue(pos, cells, &mut attempts, &mut queue, &mut summary, cfg)
                {
                    sweep_err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = sweep_err {
            break Err(e);
        }
    };
    match out {
        Ok(()) => {
            shutdown(&mut slots);
            let payloads = results
                .into_iter()
                .map(|r| r.ok_or_else(|| "internal: unfilled result slot".to_string()))
                .collect::<Result<Vec<Json>, String>>()?;
            Ok((payloads, summary))
        }
        Err(e) => fail(slots, e),
    }
}

fn fail(mut slots: Vec<WorkerSlot>, e: String) -> Result<(Vec<Json>, PoolSummary), String> {
    kill_all(&mut slots);
    Err(e)
}

/// One worker stdout line: a `result` fills its slot, an `error` fails
/// the run. Lines from workers already retired (killed on deadline, but
/// their reader thread had buffered output) are dropped.
fn handle_line(
    slot: &mut WorkerSlot,
    w: usize,
    line: &str,
    cells: &[u64],
    results: &mut [Option<Json>],
    done: &mut usize,
) -> Result<(), String> {
    if !slot.alive {
        return Ok(());
    }
    let msg = Json::parse(line)
        .map_err(|e| format!("worker {w}: unparsable protocol line {line:?}: {e}"))?;
    match msg.get("type").and_then(Json::as_str) {
        Some("result") => {
            let cell = msg.req_u64("cell").map_err(|e| format!("worker {w}: {e}"))?;
            let payload = msg
                .req("payload")
                .map_err(|e| format!("worker {w}: {e}"))?
                .clone();
            match slot.busy {
                Some((pos, _)) if cells[pos] == cell => {
                    slot.busy = None;
                    if results[pos].is_none() {
                        results[pos] = Some(payload);
                        *done += 1;
                    }
                    Ok(())
                }
                _ => Err(format!(
                    "worker {w}: result for cell {cell} it was not assigned"
                )),
            }
        }
        Some("error") => {
            let cell = msg.get("cell").and_then(Json::as_u64);
            let message = msg
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("(no message)");
            Err(match cell {
                Some(c) => format!("worker {w}, cell {c}: {message}"),
                None => format!("worker {w}: {message}"),
            })
        }
        other => Err(format!(
            "worker {w}: unexpected protocol message type {other:?} in {line:?}"
        )),
    }
}

/// Puts a lost cell back at the front of the queue, or fails the run
/// when its retry budget is spent.
fn requeue(
    pos: usize,
    cells: &[u64],
    attempts: &mut [u32],
    queue: &mut VecDeque<usize>,
    summary: &mut PoolSummary,
    cfg: &PoolConfig,
) -> Result<(), String> {
    attempts[pos] += 1;
    if attempts[pos] > cfg.retries {
        return Err(format!(
            "cell {} lost its worker {} times (retry budget {}); giving up",
            cells[pos], attempts[pos], cfg.retries,
        ));
    }
    summary.retries += 1;
    queue.push_front(pos);
    Ok(())
}

fn spawn_worker(
    exe: &std::path::Path,
    args: &[String],
    w: usize,
    plan_line: &str,
    tx: &mpsc::Sender<Event>,
) -> Result<WorkerSlot, String> {
    let mut child = Command::new(exe)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        // stderr inherited: worker diagnostics surface on the
        // coordinator's stderr.
        .spawn()
        .map_err(|e| format!("cannot spawn worker `{}`: {e}", exe.display()))?;
    let mut stdin = child
        .stdin
        .take()
        .ok_or_else(|| "worker stdin was not piped".to_string())?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| "worker stdout was not piped".to_string())?;
    let tx = tx.clone();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => {
                    let _ = tx.send(Event::Eof(w));
                    break;
                }
                Ok(_) => {
                    let _ = tx.send(Event::Line(w, line.trim_end().to_string()));
                }
            }
        }
    });
    // An init failure here just means the worker died at birth; its EOF
    // event reports it, so the write result is advisory.
    let init = format!(
        "{{\"schema\":\"{}\",\"type\":\"init\",\"worker\":{w},\"plan\":{plan_line}}}",
        crate::PROTOCOL_SCHEMA
    );
    let _ = writeln!(stdin, "{init}").and_then(|()| stdin.flush());
    Ok(WorkerSlot { child, stdin: Some(stdin), busy: None, alive: true })
}

/// Graceful shutdown of the survivors: closing stdin EOFs the worker's
/// serve loop, which exits cleanly; `wait` reaps it (and anything
/// already killed).
fn shutdown(slots: &mut [WorkerSlot]) {
    for slot in slots.iter_mut() {
        drop(slot.stdin.take());
    }
    for slot in slots {
        let _ = slot.child.wait();
    }
}

fn kill_all(slots: &mut [WorkerSlot]) {
    for slot in slots.iter_mut() {
        let _ = slot.child.kill();
        drop(slot.stdin.take());
    }
    for slot in slots {
        let _ = slot.child.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A POSIX-sh stand-in worker: answers every `cell` assignment with
    /// a `result` whose payload echoes the cell id — enough to test the
    /// pool's scheduling, merging and fault handling without dragging a
    /// simulator in.
    const SH_ECHO_WORKER: &str = r#"
while IFS= read -r line; do
  case "$line" in
    *'"type":"cell"'*)
      c=${line##*\"cell\":}; c=${c%%\}*}
      printf '{"type":"result","cell":%s,"payload":{"cell":%s}}\n' "$c" "$c"
      ;;
  esac
done
"#;

    fn sh_cmd(script: &str) -> Option<(std::path::PathBuf, Vec<String>)> {
        Some(("sh".into(), vec!["-c".into(), script.into()]))
    }

    fn plan() -> Json {
        Json::parse(r#"{"note":"test plan"}"#).unwrap()
    }

    #[test]
    fn results_come_back_in_cell_order() {
        let cells: Vec<u64> = vec![3, 1, 4, 1_000_000, 9];
        for workers in [1usize, 2, 4, 8] {
            let cfg = PoolConfig { workers, worker_cmd: sh_cmd(SH_ECHO_WORKER), ..PoolConfig::default() };
            let (payloads, summary) = dispatch_cells(&plan(), &cells, &cfg).unwrap();
            assert_eq!(payloads.len(), cells.len());
            for (cell, payload) in cells.iter().zip(&payloads) {
                assert_eq!(payload.get("cell").and_then(Json::as_u64), Some(*cell));
            }
            assert_eq!(summary.workers_spawned, workers.min(cells.len()));
            assert_eq!(summary.workers_lost, 0);
            assert_eq!(summary.retries, 0);
        }
    }

    #[test]
    fn empty_cell_list_spawns_nothing() {
        let cfg = PoolConfig { worker_cmd: sh_cmd(SH_ECHO_WORKER), ..PoolConfig::default() };
        let (payloads, summary) = dispatch_cells(&plan(), &[], &cfg).unwrap();
        assert!(payloads.is_empty());
        assert_eq!(summary.workers_spawned, 0);
    }

    #[test]
    fn dead_worker_cells_are_retried_on_survivors() {
        // Worker 0 exits as soon as it is assigned a cell; worker 1
        // serves normally. Every cell must still complete.
        let script = r#"
read -r init
case "$init" in *'"worker":0'*) die=1;; *) die=0;; esac
while IFS= read -r line; do
  case "$line" in
    *'"type":"cell"'*)
      [ "$die" = 1 ] && exit 7
      c=${line##*\"cell\":}; c=${c%%\}*}
      printf '{"type":"result","cell":%s,"payload":{"cell":%s}}\n' "$c" "$c"
      ;;
  esac
done
"#;
        let cells: Vec<u64> = (0..6).collect();
        let cfg = PoolConfig { workers: 2, worker_cmd: sh_cmd(script), ..PoolConfig::default() };
        let (payloads, summary) = dispatch_cells(&plan(), &cells, &cfg).unwrap();
        for (cell, payload) in cells.iter().zip(&payloads) {
            assert_eq!(payload.get("cell").and_then(Json::as_u64), Some(*cell));
        }
        assert_eq!(summary.workers_lost, 1);
        assert!(summary.retries >= 1, "{summary:?}");
    }

    #[test]
    fn hung_worker_hits_the_deadline_and_all_dead_is_an_error() {
        // The worker reads assignments and never answers; with one
        // worker the pool must detect the hang and fail descriptively.
        let script = "while IFS= read -r line; do :; done";
        let cfg = PoolConfig {
            workers: 1,
            cell_timeout: Duration::from_millis(100),
            retries: 1,
            worker_cmd: sh_cmd(script),
        };
        let err = dispatch_cells(&plan(), &[0], &cfg).unwrap_err();
        assert!(err.contains("workers died"), "{err}");
    }

    #[test]
    fn worker_error_is_fatal_not_retried() {
        let script = r#"
while IFS= read -r line; do
  case "$line" in
    *'"type":"cell"'*)
      printf '{"type":"error","cell":0,"message":"deterministic failure"}\n'
      ;;
  esac
done
"#;
        let cfg = PoolConfig { workers: 1, worker_cmd: sh_cmd(script), ..PoolConfig::default() };
        let err = dispatch_cells(&plan(), &[0, 1], &cfg).unwrap_err();
        assert!(err.contains("deterministic failure"), "{err}");
    }

    #[test]
    fn unspawnable_worker_command_is_an_error() {
        let cfg = PoolConfig {
            worker_cmd: Some(("/nonexistent/rix-worker".into(), vec![])),
            ..PoolConfig::default()
        };
        let err = dispatch_cells(&plan(), &[0], &cfg).unwrap_err();
        assert!(err.contains("cannot spawn worker"), "{err}");
    }
}
