//! # rix-dispatch: multi-process and multi-host experiment dispatch
//!
//! The experiment layer's service tier: a [`pool`] coordinator that
//! shards independent grid cells across **worker processes** over
//! stdio, a [`net`] coordinator that does the same across **remote
//! workers** over TCP, the [`worker`] serve loop those workers run, a
//! [`transport`] abstraction both share, and a content-addressed
//! result [`cache`] so a re-run only simulates what changed.
//!
//! The crate is deliberately generic — it knows nothing about
//! simulators, benchmarks or sweeps. A *plan* is an opaque JSON value
//! the caller serialises, a *cell* is a `u64` index into work only the
//! caller can interpret, and a *payload* is whatever JSON the worker's
//! executor returns for a cell. `rix-bench` layers the (benchmark ×
//! config) grid semantics on top; anything else with independent,
//! deterministic, numberable work units can reuse the same pool.
//!
//! ## Protocol (`rix-dispatch/2`, superset of `/1`)
//!
//! Newline-delimited JSON frames. Over stdio the channel is the
//! worker's stdin/stdout (stderr passes through to the coordinator's,
//! so worker diagnostics stay visible); over TCP it is one socket per
//! worker connection. The `/1` core:
//!
//! ```text
//! coordinator → worker   {"schema":"rix-dispatch/2","type":"init","worker":0,
//!                         "heartbeat_ms":2000,"cache":true,"plan":{…}}
//! coordinator → worker   {"type":"cell","cell":5,"key":"<cache key>"}
//! worker → coordinator   {"type":"result","cell":5,"payload":{…}}
//! worker → coordinator   {"type":"error","cell":5,"message":"…"}
//! ```
//!
//! and the `/2` extensions (all absent over plain stdio dispatch, which
//! sends `heartbeat_ms:0`, `cache:false` and keyless cells):
//!
//! ```text
//! worker → coordinator   {"schema":"rix-dispatch/2","type":"hello",
//!                         "name":"w4242","role":"worker","token":"…"}
//! either direction       {"type":"ping","n":7}
//! worker → coordinator   {"type":"cache_load","key":"…"}
//! coordinator → worker   {"type":"cache_hit","key":"…","payload":{…}}
//! coordinator → worker   {"type":"cache_miss","key":"…"}
//! worker → coordinator   {"type":"cache_store","key":"…","payload":{…}}
//! worker → coordinator   {"type":"result","cell":5,"cached":true,"payload":{…}}
//! coordinator → worker   {"type":"shutdown"}
//! coordinator → worker   {"type":"quarantine"}
//! ```
//!
//! A TCP connection opens with the worker's `hello` (a `"role":"status"`
//! hello instead receives one `rix-dispatch-status/1` document and is
//! closed — that is how `exp workers --status` works). When the
//! coordinator was started with a shared secret (`--token` /
//! `RIX_DISPATCH_TOKEN`), every hello — worker and status alike — must
//! carry a matching `"token"` field; a missing or mismatched token is
//! answered with a single cell-less `{"type":"error"}` frame and the
//! connection is closed before any work is offered. The coordinator
//! answers with `init`, then one `cell` at a time per worker (every
//! worker stays single-occupied, so a slow cell never queues behind a
//! fast one). Any received frame proves the peer alive; `ping` frames
//! exist so that proof keeps arriving while a long cell runs. `init`
//! with `"cache":true` tells the worker to run the cache dance for
//! keyed cells: `cache_load` before executing (a `cache_hit` payload is
//! returned as a `"cached":true` result without executing), and
//! `cache_store` after a miss — the coordinator serves both from its
//! local [`cache::ResultCache`], so diskless remote hosts still dedup.
//! `shutdown` ends a worker cleanly (exit 0); `quarantine` tells a peer
//! the coordinator gave up on it (exit 3).
//!
//! Workers accept `/1` or `/2` in `init`; every frame a `/1`
//! coordinator sends is valid `/2`.
//!
//! ## Fault model
//!
//! Shared (both transports):
//!
//! * worker death (crash, abort, kill — EOF on the channel) →
//!   in-flight cell retried elsewhere, bounded per-cell retry budget;
//! * worker hang → per-cell deadline, kill/disconnect, retry;
//! * deterministic executor `error` → **fatal** to the whole run, no
//!   retry: cells are deterministic, so an error one worker can report
//!   is an error every retry would hit too.
//!
//! stdio only:
//!
//! * all workers dead with work remaining → the run fails with a
//!   descriptive error (workers are not respawned — a workload that
//!   kills every process it touches is a bug to report, not mask).
//!
//! TCP only (networks add failure modes pipes cannot have):
//!
//! * half-open connection / partition → no frames arrive; the peer is
//!   declared lost when silent past the liveness deadline (4× the
//!   heartbeat interval), its in-flight cell requeued;
//! * lost worker → reconnects with exponential backoff + jitter under
//!   a capped attempt budget ([`transport::Backoff`]);
//! * a peer whose consecutive failures reach the quarantine threshold
//!   is quarantined: its connections are refused work, its cells drain
//!   to healthy peers;
//! * all remote capacity lost (and not recovered within the grace
//!   period) or a cell's retry budget spent → **graceful degradation**:
//!   the affected cells are handed back to the caller to finish
//!   in-process, and the degradation is reported in
//!   [`pool::PoolSummary`] — a distributed sweep completes with a
//!   slower tail rather than failing.
//!
//! Fault injection for tests: `RIX_DISPATCH_FAULT` takes the legacy
//! process-level specs (`abort:K` / `stall:K`, interpreted by the
//! executor layer) and the network-level specs
//! ([`transport::NetFault`]: `net-drop:N[:repeat]` / `net-stall:N` /
//! `net-exit:N`, fired by the remote worker at its `N`th actionable
//! frame).
//!
//! [`hash::fnv128`] is the shared 128-bit FNV-1a used for cache keys
//! and spec fingerprints.

pub mod cache;
pub mod hash;
pub mod net;
pub mod pool;
pub mod transport;
pub mod worker;

pub use cache::{CacheStats, ResultCache};
pub use net::{connect_worker, query_status, serve_cells, NetOutcome, NetPoolConfig};
pub use pool::{dispatch_cells, PoolConfig, PoolError, PoolSummary, WorkerStat};
pub use transport::{Backoff, NetFault, NetFaultKind};
pub use worker::serve;

/// The hidden first argument a coordinator passes when self-exec'ing a
/// worker (`current_exe() __rix-worker`). Binaries that can act as
/// workers check for it first thing in `main` (before any other flag
/// parsing) and enter their serve loop.
pub const WORKER_ARG: &str = "__rix-worker";

/// The protocol schema this build speaks (named in `init` and `hello`).
pub const PROTOCOL_SCHEMA: &str = "rix-dispatch/2";

/// The previous protocol schema, still accepted in `init`: `/2` is a
/// strict superset, so a `/1` coordinator drives a `/2` worker
/// unchanged.
pub const PROTOCOL_SCHEMA_V1: &str = "rix-dispatch/1";

/// The schema of the status document served to a `"role":"status"`
/// hello (see [`net::query_status`]).
pub const STATUS_SCHEMA: &str = "rix-dispatch-status/1";
