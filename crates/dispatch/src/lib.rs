//! # rix-dispatch: multi-process experiment dispatch
//!
//! The experiment layer's service tier: a [`pool`] coordinator that
//! shards independent grid cells across **worker processes**, a
//! [`worker`] serve loop those processes run, and a content-addressed
//! result [`cache`] so a re-run only simulates what changed.
//!
//! The crate is deliberately generic — it knows nothing about
//! simulators, benchmarks or sweeps. A *plan* is an opaque JSON value
//! the caller serialises, a *cell* is a `u64` index into work only the
//! caller can interpret, and a *payload* is whatever JSON the worker's
//! executor returns for a cell. `rix-bench` layers the (benchmark ×
//! config) grid semantics on top; anything else with independent,
//! deterministic, numberable work units can reuse the same pool.
//!
//! ## Protocol (`rix-dispatch/1`)
//!
//! Newline-delimited JSON over the worker's stdio (stderr passes
//! through to the coordinator's, so worker diagnostics stay visible):
//!
//! ```text
//! coordinator → worker   {"schema":"rix-dispatch/1","type":"init","worker":0,"plan":{…}}
//! coordinator → worker   {"type":"cell","cell":5}
//! worker → coordinator   {"type":"result","cell":5,"payload":{…}}
//! worker → coordinator   {"type":"error","cell":5,"message":"…"}
//! ```
//!
//! One `init` opens the stream, then one `cell` at a time per worker
//! (the coordinator keeps every worker single-occupied, so a slow cell
//! never queues behind a fast one on the same process). A worker that
//! dies (EOF on its stdout) or exceeds the per-cell deadline is killed
//! and its in-flight cell is retried on a surviving worker, up to a
//! bounded per-cell retry budget. An explicit `error` message is
//! **fatal** to the whole run: cells are deterministic, so an error
//! that a worker could report is an error every retry would hit too.
//!
//! ## Fault model
//!
//! * worker process death (crash, abort, kill) → in-flight cell retried;
//! * worker hang → per-cell deadline, kill, retry;
//! * all workers dead with work remaining → the run fails with a
//!   descriptive error (workers are not respawned — a workload that
//!   kills every process it touches is a bug to report, not mask);
//! * deterministic executor error → immediate failure, no retry.
//!
//! [`hash::fnv128`] is the shared 128-bit FNV-1a used for cache keys
//! and spec fingerprints.

pub mod cache;
pub mod hash;
pub mod pool;
pub mod worker;

pub use cache::ResultCache;
pub use pool::{dispatch_cells, PoolConfig, PoolSummary};
pub use worker::serve;

/// The hidden first argument a coordinator passes when self-exec'ing a
/// worker (`current_exe() __rix-worker`). Binaries that can act as
/// workers check for it first thing in `main` (before any other flag
/// parsing) and enter their serve loop.
pub const WORKER_ARG: &str = "__rix-worker";

/// The protocol schema named in every `init` message.
pub const PROTOCOL_SCHEMA: &str = "rix-dispatch/1";
