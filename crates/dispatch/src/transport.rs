//! Transport abstraction for the dispatch protocol: framed NDJSON
//! channels over stdio pipes or TCP sockets, the reconnect backoff
//! schedule, and the deterministic network fault injector.
//!
//! The protocol layer ([`crate::pool`], [`crate::net`],
//! [`crate::worker`]) never touches a raw socket or pipe directly: it
//! writes whole frames through a [`FrameSink`] and reads them through a
//! [`LineSource`]. The two stdio halves block forever (a pipe cannot go
//! half-open — the OS delivers EOF the moment the peer dies), while the
//! TCP halves poll with a read timeout so the caller can check
//! heartbeat liveness deadlines between frames. That polling is what
//! makes half-open connections — the failure mode pipes never have —
//! detectable at all.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The write half of a framed NDJSON channel: one protocol message per
/// call, flushed eagerly (frames double as liveness signals, so they
/// must never sit in a buffer).
pub trait FrameSink {
    /// Sends one frame (`line` carries no trailing newline).
    fn send(&mut self, line: &str) -> io::Result<()>;
    /// Closes the write half, EOF-ing the peer's read loop. Sends after
    /// a close fail.
    fn close(&mut self);
}

/// [`FrameSink`] over any owned writer — a worker's stdout, a child's
/// stdin pipe. Closing drops the writer (for a pipe, that is the EOF).
pub struct WriteSink<W: Write>(Option<W>);

impl<W: Write> WriteSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        Self(Some(writer))
    }
}

impl<W: Write> FrameSink for WriteSink<W> {
    fn send(&mut self, line: &str) -> io::Result<()> {
        let w = self
            .0
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::BrokenPipe, "sink closed"))?;
        writeln!(w, "{line}")?;
        w.flush()
    }

    fn close(&mut self) {
        self.0 = None;
    }
}

/// [`FrameSink`] over a shared TCP stream. Writes are serialised
/// through a mutex so a heartbeat thread and a serve loop can share one
/// socket without interleaving bytes mid-frame; the sink is `Clone` for
/// exactly that purpose. Closing shuts the socket down in both
/// directions (every protocol exchange this crate runs is dead once
/// either direction is).
#[derive(Clone)]
pub struct TcpSink(Arc<Mutex<Option<TcpStream>>>);

impl TcpSink {
    /// Wraps (the write half of) `stream`.
    #[must_use]
    pub fn new(stream: TcpStream) -> Self {
        Self(Arc::new(Mutex::new(Some(stream))))
    }
}

impl FrameSink for TcpSink {
    fn send(&mut self, line: &str) -> io::Result<()> {
        let mut guard = self
            .0
            .lock()
            .map_err(|_| io::Error::other("sink mutex poisoned"))?;
        let stream = guard
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::BrokenPipe, "sink closed"))?;
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        stream.write_all(buf.as_bytes())?;
        stream.flush()
    }

    fn close(&mut self) {
        if let Ok(mut guard) = self.0.lock() {
            if let Some(stream) = guard.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }
}

/// One read step of a framed channel.
pub enum NextLine {
    /// A complete frame (trailing newline stripped).
    Line(String),
    /// The peer closed the channel.
    Eof,
    /// No frame arrived within the poll interval (TCP only): the caller
    /// checks its liveness deadlines and polls again. A blocking stdio
    /// source never returns this.
    Idle,
}

/// The read half of a framed NDJSON channel.
pub trait LineSource {
    /// Reads the next frame, EOF, or — on a polling transport — an idle
    /// tick.
    fn next_line(&mut self) -> io::Result<NextLine>;
}

/// Blocking [`LineSource`] over any reader (stdin, a pipe). Never
/// returns [`NextLine::Idle`].
pub struct BlockingSource<R: Read>(BufReader<R>);

impl<R: Read> BlockingSource<R> {
    /// Wraps `reader`.
    pub fn new(reader: R) -> Self {
        Self(BufReader::new(reader))
    }
}

impl<R: Read> LineSource for BlockingSource<R> {
    fn next_line(&mut self) -> io::Result<NextLine> {
        let mut line = String::new();
        match self.0.read_line(&mut line)? {
            0 => Ok(NextLine::Eof),
            _ => Ok(NextLine::Line(line.trim_end().to_string())),
        }
    }
}

/// Polling [`LineSource`] over a TCP stream: a read timeout turns a
/// silent link into periodic [`NextLine::Idle`] ticks so the caller can
/// enforce a liveness deadline. A frame split across polls accumulates
/// in a persistent partial buffer — bytes are never dropped on a
/// timeout.
pub struct TcpSource {
    reader: BufReader<TcpStream>,
    partial: String,
}

impl TcpSource {
    /// Wraps (the read half of) `stream`, polling at `poll` granularity.
    pub fn new(stream: TcpStream, poll: Duration) -> io::Result<Self> {
        stream.set_read_timeout(Some(poll.max(Duration::from_millis(1))))?;
        Ok(Self { reader: BufReader::new(stream), partial: String::new() })
    }
}

impl LineSource for TcpSource {
    fn next_line(&mut self) -> io::Result<NextLine> {
        match self.reader.read_line(&mut self.partial) {
            Ok(0) => Ok(NextLine::Eof),
            Ok(_) => {
                if self.partial.ends_with('\n') {
                    let line = std::mem::take(&mut self.partial);
                    Ok(NextLine::Line(line.trim_end().to_string()))
                } else {
                    // read_line returned without a newline: EOF mid-frame.
                    Ok(NextLine::Eof)
                }
            }
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                Ok(NextLine::Idle)
            }
            Err(e) => Err(e),
        }
    }
}

// ----- reconnect backoff ------------------------------------------------

/// The reconnect schedule: exponential backoff with deterministic
/// jitter and a capped attempt budget.
///
/// Attempt `n` (0-based) waits `base * 2^n`, clamped to `cap`, then
/// jittered into the upper half of that window — `[d/2, d]` — by a hash
/// of `(seed, n)`. The jitter spreads a fleet of workers that all lost
/// the same coordinator across time instead of having them reconnect in
/// lock-step, while any one worker's schedule stays reproducible from
/// its seed. Once `max_attempts` delays have been spent, [`Backoff::delay`]
/// returns `None` and the caller gives up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backoff {
    /// First delay; doubled every attempt.
    pub base: Duration,
    /// Ceiling applied to the exponential delay before jitter.
    pub cap: Duration,
    /// Delays granted before `delay` returns `None`.
    pub max_attempts: u32,
    /// Jitter seed (a worker typically uses its pid).
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(200),
            cap: Duration::from_secs(15),
            max_attempts: 10,
            seed: 0x0005_DEEC_E66D,
        }
    }
}

impl Backoff {
    /// The pause before reconnect `attempt` (0-based), or `None` once
    /// the attempt budget is spent.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Option<Duration> {
        if attempt >= self.max_attempts {
            return None;
        }
        let doubled = self.base.saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX));
        let capped = doubled.min(self.cap).max(Duration::from_millis(1));
        let ns = u64::try_from(capped.as_nanos()).unwrap_or(u64::MAX);
        let half = ns / 2;
        let jitter = splitmix64(self.seed ^ (u64::from(attempt) << 32)) % (half + 1);
        Some(Duration::from_nanos(half + jitter))
    }
}

/// `SplitMix64` finaliser — a cheap, well-mixed hash for jitter (no
/// vendored RNG needed).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

// ----- network fault injection (tests) ----------------------------------

/// What an injected network fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFaultKind {
    /// Close the connection (both directions) and let the worker's
    /// reconnect logic take over.
    Drop,
    /// Stop reading *and* writing with the socket left open — a
    /// half-open link that only the peer's heartbeat liveness deadline
    /// can catch.
    Stall,
    /// Kill the worker process outright (exit 86).
    Exit,
}

/// Deterministic network fault injection for tests, parsed from
/// `RIX_DISPATCH_FAULT`:
///
/// * `net-drop:N` — when this worker receives its `N`th *actionable*
///   frame (`init`/`cell`/`shutdown`; heartbeats are not counted, so a
///   test never races the ping timer), close the connection. One-shot:
///   the reconnected worker serves normally after.
/// * `net-drop:N:repeat` — fire on the `N`th actionable frame of
///   *every* connection (a peer that fails every cell it is handed —
///   the quarantine trigger).
/// * `net-stall:N` — go silent with the socket open (simulated
///   half-open link / network partition).
/// * `net-exit:N` — die on the spot (a mid-cell worker crash).
///
/// Frame numbering starts at 1 with the `init` message, so `:2` fires
/// on the first cell assignment. The legacy process-level specs
/// (`abort:K` / `stall:K`, keyed by worker id) are unrelated and parsed
/// by the executor layer, not here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetFault {
    /// What happens.
    pub kind: NetFaultKind,
    /// Fires on the `at`-th actionable frame (1-based).
    pub at: u64,
    /// Fire on every connection instead of once per process.
    pub repeat: bool,
}

impl NetFault {
    /// Parses a `RIX_DISPATCH_FAULT` value; `None` for anything that is
    /// not a network fault spec (including the legacy `abort:K` /
    /// `stall:K` process faults).
    #[must_use]
    pub fn parse(spec: &str) -> Option<Self> {
        let mut parts = spec.split(':');
        let kind = match parts.next()? {
            "net-drop" => NetFaultKind::Drop,
            "net-stall" => NetFaultKind::Stall,
            "net-exit" => NetFaultKind::Exit,
            _ => return None,
        };
        let at: u64 = parts.next()?.parse().ok().filter(|&n| n >= 1)?;
        let repeat = match parts.next() {
            None => false,
            Some("repeat") => true,
            Some(_) => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(Self { kind, at, repeat })
    }

    /// Reads the fault spec from `RIX_DISPATCH_FAULT`.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        std::env::var("RIX_DISPATCH_FAULT").ok().as_deref().and_then(Self::parse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_delays_are_exponential_with_bounded_jitter() {
        let b = Backoff {
            base: Duration::from_millis(100),
            cap: Duration::from_secs(60),
            max_attempts: 6,
            seed: 42,
        };
        for attempt in 0..6 {
            let nominal = Duration::from_millis(100 * (1 << attempt));
            let d = b.delay(attempt).expect("within budget");
            assert!(
                d >= nominal / 2 && d <= nominal,
                "attempt {attempt}: {d:?} outside [{:?}, {nominal:?}]",
                nominal / 2
            );
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_varies_across_seeds() {
        let mk = |seed| Backoff { seed, ..Backoff::default() };
        let (a, b) = (mk(1), mk(1));
        assert_eq!(
            (0..10).map(|n| a.delay(n)).collect::<Vec<_>>(),
            (0..10).map(|n| b.delay(n)).collect::<Vec<_>>(),
            "same seed, same schedule"
        );
        let c = mk(2);
        assert!(
            (0..10).any(|n| a.delay(n) != c.delay(n)),
            "different seeds should jitter differently"
        );
    }

    #[test]
    fn backoff_caps_the_exponential() {
        let b = Backoff {
            base: Duration::from_millis(100),
            cap: Duration::from_millis(250),
            max_attempts: 40,
            seed: 7,
        };
        // Attempt 30 would nominally be 100ms * 2^30; the cap bounds it.
        let d = b.delay(30).expect("within budget");
        assert!(d <= Duration::from_millis(250), "{d:?} exceeds the cap");
        assert!(d >= Duration::from_millis(125), "{d:?} under half the cap");
    }

    #[test]
    fn backoff_attempt_budget_is_exact() {
        let b = Backoff { max_attempts: 3, ..Backoff::default() };
        assert!(b.delay(0).is_some());
        assert!(b.delay(2).is_some());
        assert_eq!(b.delay(3), None, "budget spent");
        assert_eq!(b.delay(100), None);
        let none = Backoff { max_attempts: 0, ..Backoff::default() };
        assert_eq!(none.delay(0), None, "zero budget never sleeps");
    }

    #[test]
    fn net_fault_specs_parse_and_reject() {
        assert_eq!(
            NetFault::parse("net-drop:2"),
            Some(NetFault { kind: NetFaultKind::Drop, at: 2, repeat: false })
        );
        assert_eq!(
            NetFault::parse("net-drop:3:repeat"),
            Some(NetFault { kind: NetFaultKind::Drop, at: 3, repeat: true })
        );
        assert_eq!(
            NetFault::parse("net-stall:1"),
            Some(NetFault { kind: NetFaultKind::Stall, at: 1, repeat: false })
        );
        assert_eq!(
            NetFault::parse("net-exit:5"),
            Some(NetFault { kind: NetFaultKind::Exit, at: 5, repeat: false })
        );
        // Legacy process faults and garbage are not network faults.
        for bad in ["abort:1", "stall:0", "net-drop", "net-drop:0", "net-drop:2:always", "net-drop:2:repeat:x", ""] {
            assert_eq!(NetFault::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn write_sink_frames_and_closes() {
        let mut sink = WriteSink::new(Vec::new());
        sink.send("{\"a\":1}").expect("write");
        sink.send("{\"b\":2}").expect("write");
        sink.close();
        assert!(sink.send("{}").is_err(), "closed sink rejects writes");
    }

    #[test]
    fn blocking_source_reads_lines_then_eof() {
        let data = b"{\"a\":1}\n{\"b\":2}\n".to_vec();
        let mut src = BlockingSource::new(std::io::Cursor::new(data));
        match src.next_line().expect("line") {
            NextLine::Line(l) => assert_eq!(l, "{\"a\":1}"),
            _ => panic!("expected a line"),
        }
        match src.next_line().expect("line") {
            NextLine::Line(l) => assert_eq!(l, "{\"b\":2}"),
            _ => panic!("expected a line"),
        }
        assert!(matches!(src.next_line().expect("eof"), NextLine::Eof));
    }
}
