//! The worker side: a serve loop over stdin/stdout.
//!
//! [`serve`] is what a worker process runs after recognising
//! [`crate::WORKER_ARG`]: it reads protocol messages line by line,
//! hands each cell assignment to the caller's executor, and writes the
//! result (or error) back. The executor receives the full `init`
//! message — including the opaque `plan` — on every call, so it can
//! lazily build whatever per-plan state it needs on the first cell and
//! reuse it after.
//!
//! Results go to stdout (the protocol channel); anything the executor
//! prints must therefore go to std**err**, which passes through to the
//! coordinator's stderr.

use rix_isa::json::Json;
use std::io::{BufRead, Write};

fn protocol_exit(msg: &str) -> ! {
    // A malformed coordinator message is unrecoverable: report on both
    // channels (the error line for the coordinator, stderr for humans)
    // and die. The coordinator treats the explicit error as fatal.
    emit(&format!(
        "{{\"type\":\"error\",\"message\":{}}}",
        Json::Str(msg.to_string()).dump()
    ));
    eprintln!("rix worker: {msg}");
    std::process::exit(1);
}

fn emit(line: &str) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

/// Serves cell assignments until the coordinator closes stdin, then
/// exits the process (status 0 on a clean close, 1 on a protocol or
/// executor error).
///
/// `execute` maps (the `init` message, a cell id) to a result payload;
/// its `Err` is reported to the coordinator and ends the worker —
/// executor failures are deterministic by contract, so retrying
/// elsewhere cannot help.
pub fn serve<F>(mut execute: F) -> !
where
    F: FnMut(&Json, u64) -> Result<Json, String>,
{
    let stdin = std::io::stdin();
    let mut init: Option<Json> = None;
    for line in stdin.lock().lines() {
        let Ok(line) = line else {
            protocol_exit("cannot read stdin");
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let msg = match Json::parse(line) {
            Ok(m) => m,
            Err(e) => protocol_exit(&format!("unparsable message {line:?}: {e}")),
        };
        match msg.get("type").and_then(Json::as_str) {
            Some("init") => {
                match msg.get("schema").and_then(Json::as_str) {
                    Some(crate::PROTOCOL_SCHEMA) => {}
                    other => protocol_exit(&format!(
                        "unsupported protocol schema {other:?} (this build speaks {})",
                        crate::PROTOCOL_SCHEMA
                    )),
                }
                init = Some(msg);
            }
            Some("cell") => {
                let cell = match msg.req_u64("cell") {
                    Ok(c) => c,
                    Err(e) => protocol_exit(&e),
                };
                let Some(init_msg) = &init else {
                    protocol_exit("cell assignment before init");
                };
                match execute(init_msg, cell) {
                    Ok(payload) => emit(&format!(
                        "{{\"type\":\"result\",\"cell\":{cell},\"payload\":{}}}",
                        payload.dump()
                    )),
                    Err(e) => {
                        emit(&format!(
                            "{{\"type\":\"error\",\"cell\":{cell},\"message\":{}}}",
                            Json::Str(e.clone()).dump()
                        ));
                        eprintln!("rix worker: cell {cell}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            other => protocol_exit(&format!("unexpected message type {other:?}")),
        }
    }
    std::process::exit(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    // `serve` never returns, so unit tests cover the message shapes it
    // emits instead (the pool tests exercise the loop end to end via
    // stand-in workers, and `crates/bench` drives the real binary).
    #[test]
    fn error_lines_escape_messages() {
        let msg = Json::Str("tab\there \"quoted\"".to_string()).dump();
        let line = format!("{{\"type\":\"error\",\"cell\":3,\"message\":{msg}}}");
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("error"));
        assert_eq!(
            v.get("message").and_then(Json::as_str),
            Some("tab\there \"quoted\"")
        );
    }
}
