//! The worker side: the serve loop shared by both transports.
//!
//! [`serve`] is what a worker process runs after recognising
//! [`crate::WORKER_ARG`]: it reads protocol messages from stdin line by
//! line, hands each cell assignment to the caller's executor, and
//! writes the result (or error) back to stdout. The executor receives
//! the full `init` message — including the opaque `plan` — on every
//! call, so it can lazily build whatever per-plan state it needs on the
//! first cell and reuse it after.
//!
//! The cell-handling core ([`run_cell`]) is transport-agnostic and also
//! drives remote TCP workers (see [`crate::net::connect_worker`]),
//! including the remote cache dance: when the coordinator's `init`
//! advertises `"cache":true` and a `cell` frame carries a `key`, the
//! worker asks the coordinator for the cached payload (`cache_load`)
//! before executing and publishes fresh results back (`cache_store`) —
//! so diskless remote hosts still dedup against the coordinator's
//! cache.
//!
//! Results go to the protocol channel; anything the executor prints
//! must therefore go to std**err**, which passes through to the
//! coordinator's stderr.

use crate::transport::{BlockingSource, FrameSink, LineSource, NextLine, WriteSink};
use rix_isa::json::Json;
use std::time::{Duration, Instant};

/// How long a worker waits for the coordinator to answer a
/// `cache_load` before declaring the connection lost.
const CACHE_REPLY_DEADLINE: Duration = Duration::from_secs(10);

/// How a cell (or the connection serving it) failed, from the worker's
/// point of view.
pub enum ServeError {
    /// The channel died (send failure, EOF, or an unanswered cache
    /// lookup). Reconnecting may help; the coordinator requeues the
    /// cell either way.
    Lost(String),
    /// A deterministic failure (executor error, protocol violation).
    /// Already reported to the coordinator where possible; retrying
    /// elsewhere cannot help, so the worker must die non-zero.
    Fatal(String),
}

/// Sends a protocol `error` frame; best-effort (the caller is usually
/// about to die anyway).
pub(crate) fn send_error(sink: &mut dyn FrameSink, cell: Option<u64>, msg: &str) {
    let m = Json::Str(msg.to_string()).dump();
    let line = match cell {
        Some(c) => format!("{{\"type\":\"error\",\"cell\":{c},\"message\":{m}}}"),
        None => format!("{{\"type\":\"error\",\"message\":{m}}}"),
    };
    let _ = sink.send(&line);
}

/// Checks an `init` frame's schema: this build speaks
/// [`crate::PROTOCOL_SCHEMA`] and still accepts its `/1` subset.
pub(crate) fn check_init_schema(msg: &Json) -> Result<(), String> {
    match msg.get("schema").and_then(Json::as_str) {
        Some(crate::PROTOCOL_SCHEMA | crate::PROTOCOL_SCHEMA_V1) => Ok(()),
        other => Err(format!(
            "unsupported protocol schema {other:?} (this build speaks {} and accepts {})",
            crate::PROTOCOL_SCHEMA,
            crate::PROTOCOL_SCHEMA_V1
        )),
    }
}

/// Handles one `cell` frame: consult the coordinator's cache when the
/// session advertises one, execute on a miss, publish the payload.
///
/// The cache protocol is strictly request/response from the worker's
/// side — `cache_load` is answered by `cache_hit` or `cache_miss`
/// (heartbeat `ping`s may interleave and are ignored); a reply that
/// takes longer than [`CACHE_REPLY_DEADLINE`] means the link is dead.
pub(crate) fn run_cell(
    source: &mut dyn LineSource,
    sink: &mut dyn FrameSink,
    init: &Json,
    msg: &Json,
    execute: &mut dyn FnMut(&Json, u64) -> Result<Json, String>,
) -> Result<(), ServeError> {
    let cell = msg
        .req_u64("cell")
        .map_err(|e| ServeError::Fatal(format!("bad cell frame: {e}")))?;
    let cached_session = init.get("cache").and_then(Json::as_bool) == Some(true);
    let key = msg.get("key").and_then(Json::as_str).map(str::to_string);
    if cached_session {
        if let Some(key) = &key {
            let kj = Json::Str(key.clone()).dump();
            sink.send(&format!("{{\"type\":\"cache_load\",\"key\":{kj}}}"))
                .map_err(|e| ServeError::Lost(format!("cache_load send failed: {e}")))?;
            match await_cache_reply(source, key)? {
                Some(payload) => {
                    sink.send(&format!(
                        "{{\"type\":\"result\",\"cell\":{cell},\"cached\":true,\"payload\":{}}}",
                        payload.dump()
                    ))
                    .map_err(|e| ServeError::Lost(format!("result send failed: {e}")))?;
                    return Ok(());
                }
                None => {
                    let payload = execute_cell(sink, init, cell, execute)?;
                    sink.send(&format!(
                        "{{\"type\":\"cache_store\",\"key\":{kj},\"payload\":{}}}",
                        payload.dump()
                    ))
                    .map_err(|e| ServeError::Lost(format!("cache_store send failed: {e}")))?;
                    return send_result(sink, cell, &payload);
                }
            }
        }
    }
    let payload = execute_cell(sink, init, cell, execute)?;
    send_result(sink, cell, &payload)
}

fn send_result(sink: &mut dyn FrameSink, cell: u64, payload: &Json) -> Result<(), ServeError> {
    sink.send(&format!(
        "{{\"type\":\"result\",\"cell\":{cell},\"payload\":{}}}",
        payload.dump()
    ))
    .map_err(|e| ServeError::Lost(format!("result send failed: {e}")))
}

fn execute_cell(
    sink: &mut dyn FrameSink,
    init: &Json,
    cell: u64,
    execute: &mut dyn FnMut(&Json, u64) -> Result<Json, String>,
) -> Result<Json, ServeError> {
    execute(init, cell).map_err(|e| {
        let msg = format!("cell {cell}: {e}");
        send_error(sink, Some(cell), &e);
        ServeError::Fatal(msg)
    })
}

/// Waits for the `cache_hit`/`cache_miss` answering a `cache_load`,
/// ignoring interleaved heartbeats.
fn await_cache_reply(
    source: &mut dyn LineSource,
    key: &str,
) -> Result<Option<Json>, ServeError> {
    let deadline = Instant::now() + CACHE_REPLY_DEADLINE;
    loop {
        match source.next_line() {
            Ok(NextLine::Line(line)) => {
                let msg = Json::parse(&line).map_err(|e| {
                    ServeError::Fatal(format!("unparsable cache reply {line:?}: {e}"))
                })?;
                match msg.get("type").and_then(Json::as_str) {
                    Some("ping") => {}
                    Some("cache_hit") if msg.get("key").and_then(Json::as_str) == Some(key) => {
                        let payload = msg
                            .req("payload")
                            .map_err(|e| ServeError::Fatal(format!("cache_hit: {e}")))?
                            .clone();
                        return Ok(Some(payload));
                    }
                    Some("cache_miss") if msg.get("key").and_then(Json::as_str) == Some(key) => {
                        return Ok(None);
                    }
                    other => {
                        return Err(ServeError::Fatal(format!(
                            "expected a cache reply for {key}, got {other:?}"
                        )));
                    }
                }
            }
            Ok(NextLine::Idle) => {
                if Instant::now() >= deadline {
                    return Err(ServeError::Lost(format!(
                        "cache_load for {key} unanswered for {}s",
                        CACHE_REPLY_DEADLINE.as_secs()
                    )));
                }
            }
            Ok(NextLine::Eof) => {
                return Err(ServeError::Lost("connection closed awaiting cache reply".into()));
            }
            Err(e) => return Err(ServeError::Lost(format!("read failed awaiting cache reply: {e}"))),
        }
    }
}

/// Serves cell assignments over stdio until the coordinator closes
/// stdin, then exits the process (status 0 on a clean close, 1 on a
/// protocol or executor error).
///
/// `execute` maps (the `init` message, a cell id) to a result payload;
/// its `Err` is reported to the coordinator and ends the worker —
/// executor failures are deterministic by contract, so retrying
/// elsewhere cannot help.
pub fn serve<F>(mut execute: F) -> !
where
    F: FnMut(&Json, u64) -> Result<Json, String>,
{
    let mut source = BlockingSource::new(std::io::stdin().lock());
    let mut sink = WriteSink::new(std::io::stdout().lock());
    let mut init: Option<Json> = None;
    loop {
        let line = match source.next_line() {
            Ok(NextLine::Line(line)) => line,
            Ok(NextLine::Eof) => std::process::exit(0),
            Ok(NextLine::Idle) => continue,
            Err(_) => protocol_exit(&mut sink, "cannot read stdin"),
        };
        if line.is_empty() {
            continue;
        }
        let msg = match Json::parse(&line) {
            Ok(m) => m,
            Err(e) => protocol_exit(&mut sink, &format!("unparsable message {line:?}: {e}")),
        };
        match msg.get("type").and_then(Json::as_str) {
            Some("init") => {
                if let Err(e) = check_init_schema(&msg) {
                    protocol_exit(&mut sink, &e);
                }
                init = Some(msg);
            }
            Some("cell") => {
                let Some(init_msg) = init.clone() else {
                    protocol_exit(&mut sink, "cell assignment before init");
                };
                match run_cell(&mut source, &mut sink, &init_msg, &msg, &mut execute) {
                    Ok(()) => {}
                    Err(ServeError::Fatal(e) | ServeError::Lost(e)) => {
                        // Over pipes a "lost" channel means the
                        // coordinator is gone; either way this process
                        // is done.
                        eprintln!("rix worker: {e}");
                        std::process::exit(1);
                    }
                }
            }
            // A `shutdown` over stdio is redundant with closing stdin
            // but accepted for symmetry with the socket transport.
            Some("shutdown") => std::process::exit(0),
            Some("ping") => {}
            other => protocol_exit(&mut sink, &format!("unexpected message type {other:?}")),
        }
    }
}

fn protocol_exit(sink: &mut dyn FrameSink, msg: &str) -> ! {
    // A malformed coordinator message is unrecoverable: report on both
    // channels (the error frame for the coordinator, stderr for humans)
    // and die. The coordinator treats the explicit error as fatal.
    send_error(sink, None, msg);
    eprintln!("rix worker: {msg}");
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    // `serve` never returns, so unit tests drive `run_cell` directly
    // with in-memory channels (the pool tests exercise the stdio loop
    // end to end via stand-in workers, and `crates/bench` drives the
    // real binary).

    struct VecSink(Vec<String>);
    impl FrameSink for VecSink {
        fn send(&mut self, line: &str) -> std::io::Result<()> {
            self.0.push(line.to_string());
            Ok(())
        }
        fn close(&mut self) {}
    }

    fn exec_double(_init: &Json, cell: u64) -> Result<Json, String> {
        Json::parse(&format!("{{\"doubled\":{}}}", cell * 2)).map_err(|e| e.to_string())
    }

    fn cell_msg(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    #[test]
    fn uncached_cell_executes_and_emits_one_result() {
        let init = cell_msg(r#"{"type":"init","schema":"rix-dispatch/2","cache":false}"#);
        let msg = cell_msg(r#"{"type":"cell","cell":21}"#);
        let mut source = BlockingSource::new(Cursor::new(Vec::new()));
        let mut sink = VecSink(Vec::new());
        run_cell(&mut source, &mut sink, &init, &msg, &mut exec_double)
            .unwrap_or_else(|_| panic!("run_cell failed"));
        assert_eq!(sink.0.len(), 1);
        let out = Json::parse(&sink.0[0]).unwrap();
        assert_eq!(out.get("type").and_then(Json::as_str), Some("result"));
        assert_eq!(out.get("cell").and_then(Json::as_u64), Some(21));
        assert!(out.get("cached").is_none());
        assert_eq!(
            out.req("payload").unwrap().get("doubled").and_then(Json::as_u64),
            Some(42)
        );
    }

    #[test]
    fn cache_hit_skips_execution_and_marks_the_result() {
        let init = cell_msg(r#"{"type":"init","schema":"rix-dispatch/2","cache":true}"#);
        let msg = cell_msg(r#"{"type":"cell","cell":3,"key":"k3"}"#);
        // Scripted coordinator: a ping interleaves, then the hit.
        let replies = b"{\"type\":\"ping\",\"n\":1}\n{\"type\":\"cache_hit\",\"key\":\"k3\",\"payload\":{\"from\":\"cache\"}}\n".to_vec();
        let mut source = BlockingSource::new(Cursor::new(replies));
        let mut sink = VecSink(Vec::new());
        let mut never = |_: &Json, _: u64| -> Result<Json, String> {
            panic!("a cache hit must not execute")
        };
        run_cell(&mut source, &mut sink, &init, &msg, &mut never)
            .unwrap_or_else(|_| panic!("run_cell failed"));
        assert_eq!(sink.0.len(), 2, "cache_load then result: {:?}", sink.0);
        assert!(sink.0[0].contains("cache_load"));
        let out = Json::parse(&sink.0[1]).unwrap();
        assert_eq!(out.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            out.req("payload").unwrap().get("from").and_then(Json::as_str),
            Some("cache")
        );
    }

    #[test]
    fn cache_miss_executes_then_stores_then_reports() {
        let init = cell_msg(r#"{"type":"init","schema":"rix-dispatch/2","cache":true}"#);
        let msg = cell_msg(r#"{"type":"cell","cell":5,"key":"k5"}"#);
        let replies = b"{\"type\":\"cache_miss\",\"key\":\"k5\"}\n".to_vec();
        let mut source = BlockingSource::new(Cursor::new(replies));
        let mut sink = VecSink(Vec::new());
        run_cell(&mut source, &mut sink, &init, &msg, &mut exec_double)
            .unwrap_or_else(|_| panic!("run_cell failed"));
        assert_eq!(sink.0.len(), 3, "cache_load, cache_store, result: {:?}", sink.0);
        assert!(sink.0[0].contains("cache_load"));
        assert!(sink.0[1].contains("cache_store") && sink.0[1].contains("\"doubled\":10"));
        let out = Json::parse(&sink.0[2]).unwrap();
        assert_eq!(out.get("cell").and_then(Json::as_u64), Some(5));
        assert!(out.get("cached").is_none(), "a fresh result is not marked cached");
    }

    #[test]
    fn executor_error_is_fatal_and_reported() {
        let init = cell_msg(r#"{"type":"init","schema":"rix-dispatch/2","cache":false}"#);
        let msg = cell_msg(r#"{"type":"cell","cell":9}"#);
        let mut source = BlockingSource::new(Cursor::new(Vec::new()));
        let mut sink = VecSink(Vec::new());
        let mut boom =
            |_: &Json, _: u64| -> Result<Json, String> { Err("deterministic failure".into()) };
        match run_cell(&mut source, &mut sink, &init, &msg, &mut boom) {
            Err(ServeError::Fatal(e)) => assert!(e.contains("deterministic failure"), "{e}"),
            _ => panic!("executor errors must be fatal"),
        }
        let out = Json::parse(&sink.0[0]).unwrap();
        assert_eq!(out.get("type").and_then(Json::as_str), Some("error"));
        assert_eq!(out.get("cell").and_then(Json::as_u64), Some(9));
    }

    #[test]
    fn init_schema_check_accepts_both_versions() {
        for ok in [r#"{"schema":"rix-dispatch/2"}"#, r#"{"schema":"rix-dispatch/1"}"#] {
            assert!(check_init_schema(&cell_msg(ok)).is_ok(), "{ok}");
        }
        let err = check_init_schema(&cell_msg(r#"{"schema":"rix-dispatch/0"}"#)).unwrap_err();
        assert!(err.contains("unsupported protocol schema"), "{err}");
    }
}
