//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides exactly the surface the workspace uses: a deterministic
//! seedable generator ([`rngs::StdRng`]) and uniform sampling over
//! half-open integer ranges via [`RngExt::random_range`]. The generator
//! is xoshiro256** seeded through SplitMix64, so streams are
//! well-distributed and reproducible across platforms.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws a value in `[low, high)` from `rng`.
    fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                // Widen to u128 so signed ranges and u64 spans are exact.
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift keeps the draw unbiased enough for
                // workload generation (bias < 2^-64 per draw).
                let draw = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (low as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform draw from the half-open range `[low, high)`.
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// A uniformly random `u64`.
    fn random_u64(&mut self) -> u64
    where
        Self: Sized,
    {
        self.next_u64()
    }
}

impl<R: RngCore> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random_range(-20i16..20);
            assert!((-20..20).contains(&v));
            let u = r.random_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[r.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
