//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] / [`prop_oneof!`] / `prop_assert*` macros, the
//! [`strategy::Strategy`] trait with `prop_map`, [`arbitrary::any`],
//! [`collection::vec`], [`option::of`], integer-range strategies, and
//! [`test_runner::TestCaseError`]. Failing inputs are reported via panic
//! message (there is no shrinking); case generation is deterministic per
//! test name, so failures reproduce exactly on re-run.

pub mod test_runner {
    //! The runner-facing types: configuration, RNG, and case errors.

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property is false for this input.
        Fail(String),
        /// The input does not satisfy a `prop_assume!` precondition; the
        /// case is skipped, not failed.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given explanation.
        pub fn fail(reason: impl Into<String>) -> Self {
            Self::Fail(reason.into())
        }

        /// A rejected (skipped) case.
        pub fn reject(reason: impl Into<String>) -> Self {
            Self::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Fail(r) => write!(f, "test case failed: {r}"),
                Self::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// Runner configuration. Only `cases` is consulted; the other fields
    /// exist so `..ProptestConfig::default()` spreads keep working.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Consecutive `prop_assume!` rejections tolerated before the
        /// property errors out as vacuous.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64, max_shrink_iters: 0, max_global_rejects: 4096 }
        }
    }

    /// Deterministic stream (vendored rand's seeded `StdRng`), seeded
    /// from the test name so each property gets an independent but
    /// reproducible sequence.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `name`.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            use rand::SeedableRng;
            // FNV-1a over the name picks the seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { inner: rand::rngs::StdRng::seed_from_u64(h) }
        }

        /// The next 64-bit word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.inner)
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            use rand::RngExt;
            assert!(n > 0, "below(0)");
            self.inner.random_range(0..n)
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            TestRng::next_u64(self)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree or shrinking: a
    /// strategy simply samples a value from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy that generates from `self` and transforms with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies of one value type.
    /// Built by [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// A union over the given arms (must be non-empty).
        #[must_use]
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// Boxes a strategy as a union arm; a helper for [`prop_oneof!`]
    /// that lets type inference unify the arms' value types.
    pub fn union_arm<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rand::SampleUniform::sample_range(rng, self.start, self.end)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($v,)+) = self;
                    ($($v.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical full-range strategy per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy over their whole value space.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value, biased toward edge cases.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // 1-in-4 draws come from the edge set: boundary
                    // values find carry/sign bugs far faster than the
                    // uniform stream alone.
                    match rng.next_u64() & 3 {
                        0 => *Self::pick(rng, &[0, 1, <$t>::MAX, <$t>::MIN, 2]),
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    trait Pick: Sized + Copy {
        fn pick<'a>(rng: &mut TestRng, xs: &'a [Self]) -> &'a Self {
            &xs[rng.below(xs.len() as u64) as usize]
        }
    }
    impl<T: Copy> Pick for T {}

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<A> {
        _marker: core::marker::PhantomData<A>,
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `A`.
    #[must_use]
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any { _marker: core::marker::PhantomData }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Vec`s whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Some` (three draws in four) from `inner`, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            // Some-heavy so stack-like push/pop workloads stay deep.
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod prelude {
    //! The glob import the property tests use.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{}` == `{}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{} (left: `{:?}`, right: `{:?}`)",
            ::std::format!($($fmt)+), a, b
        );
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{}` != `{}` (both: `{:?}`)",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "{} (both: `{:?}`)",
            ::std::format!($($fmt)+), a
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies with one common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::union_arm($arm)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                ::core::module_path!(), "::", stringify!($name)
            ));
            let mut rejects: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let inputs = ::std::format!(concat!(
                    $(stringify!($arg), " = {:#?}\n",)+
                ), $(&$arg),+);
                // The closure exists so `?` and the prop_assert* early
                // returns work inside `$body`; bodies without either
                // would otherwise trip clippy::redundant_closure_call.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => {
                        case += 1;
                        rejects = 0;
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        ::core::assert!(
                            rejects < config.max_global_rejects,
                            "{}: too many prop_assume! rejections", stringify!($name)
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        ::core::panic!(
                            "proptest property `{}` failed at case {}: {}\ninputs:\n{}",
                            stringify!($name), case, msg, inputs
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -5i16..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths_in_bounds(v in crate::collection::vec(0u8..3, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            for e in v {
                prop_assert!(e < 3);
            }
        }

        #[test]
        fn assume_rejects_without_failing(a in any::<u8>()) {
            prop_assume!(a.is_multiple_of(2));
            prop_assert_eq!(a % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

        #[test]
        fn config_is_honoured(_x in any::<u64>()) {
            // Five cases, no failure: exercises the config arm.
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), (0u8..1).prop_map(|_| 3u8)];
        let mut rng = TestRng::deterministic("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[crate::strategy::Strategy::sample(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
