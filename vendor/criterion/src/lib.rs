//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of criterion the workspace's benches use:
//! [`Criterion::benchmark_group`], `bench_function`, `sample_size`,
//! `throughput`, [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! straightforward warm-up followed by timed samples; results print as
//! aligned text with per-iteration time (and element throughput when
//! declared). Passing `--test` (as `cargo test` does for harnessed
//! benches) runs every routine once and skips measurement.

use std::time::{Duration, Instant};

/// How a batched routine's input cost is amortised. The stand-in always
/// times setup outside the measured section, so the variants only exist
/// for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per measured iteration.
    PerIteration,
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (e.g. simulated instructions) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Times one routine: passed to the closure given to `bench_function`.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly, recording total time and count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: grow the batch until it is long
        // enough to time reliably (~5ms), then take the samples.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let took = t.elapsed();
            if self.test_mode {
                self.elapsed = took;
                self.iters = batch;
                return;
            }
            if took >= Duration::from_millis(5) || batch >= 1 << 24 {
                break;
            }
            batch *= 4;
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total += t.elapsed();
            iters += batch;
        }
        self.elapsed = total;
        self.iters = iters;
    }

    /// Like [`Bencher::iter`], with a fresh input built by `setup` for
    /// each measured call; setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            let t = Instant::now();
            std::hint::black_box(routine(setup()));
            self.elapsed = t.elapsed();
            self.iters = 1;
            return;
        }
        // One discarded warm-up round so the first timed sample does
        // not absorb cold-cache / lazy-init cost.
        std::hint::black_box(routine(setup()));
        let rounds = self.samples.max(10);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..rounds {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            total += t.elapsed();
            iters += 1;
        }
        self.elapsed = total;
        self.iters = iters;
    }

    fn per_iter(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / u32::try_from(self.iters).unwrap_or(u32::MAX)
        }
    }
}

/// A named group of related benchmarks sharing reporting settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for derived throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: self.sample_size,
            test_mode: self.criterion.test_mode,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if self.criterion.test_mode {
            println!("test {full} ... ok");
            return self;
        }
        let per = b.per_iter();
        let mut line = format!("{full:<48} {:>12}/iter", format_duration(per));
        if let Some(t) = self.throughput {
            let secs = per.as_secs_f64();
            if secs > 0.0 {
                let (units, label) = match t {
                    Throughput::Elements(n) => (n, "elem/s"),
                    Throughput::Bytes(n) => (n, "B/s"),
                };
                line.push_str(&format!("  {:>14.0} {label}", units as f64 / secs));
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group. (Reporting is incremental, so this is a no-op.)
    pub fn finish(self) {}
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The top-level harness state.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    /// Builds a harness configured from the command line (`--test`
    /// enables smoke mode; a bare positional argument filters by name).
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => test_mode = true,
                // Flags cargo bench forwards that we accept and ignore.
                "--bench" | "--nocapture" | "--quiet" | "-q" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => {
                    let _ = args.next();
                }
                other => {
                    if !other.starts_with('-') {
                        filter = Some(other.to_string());
                    }
                }
            }
        }
        Self { test_mode, filter }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(id.clone()).bench_function("", f);
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher {
            samples: 3,
            test_mode: false,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(b.iters > 0);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn group_runs_routines() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut g = c.benchmark_group("g");
        let mut ran = false;
        g.bench_function("f", |b| b.iter(|| 1 + 1));
        g.bench_function("h", |b| {
            ran = true;
            b.iter_batched(|| 2, |x| x * 2, BatchSize::SmallInput);
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(format_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(format_duration(Duration::from_millis(5)), "5.00 ms");
    }
}
