//! # rix — register integration, three ways
//!
//! `rix` reproduces *"Three Extensions to Register Integration"* (Amir
//! Roth, Anne Bracy, Vlad Petric; U. Penn MS-CIS-02-22, 2002): a
//! cycle-level 4-way superscalar out-of-order simulator whose register
//! renamer implements **register integration** — instruction reuse via
//! physical register sharing — together with the paper's three extensions:
//!
//! 1. **general reuse** through physical-register reference counting,
//! 2. **opcode/immediate/call-depth integration-table indexing**, and
//! 3. **reverse integration**, which turns stack saves/restores into free
//!    speculative memory bypassing.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`isa`] — the RIX instruction set and assembler,
//! * [`mem`] — the cache/TLB/bus memory hierarchy,
//! * [`frontend`] — branch prediction and fetch,
//! * [`integration`] — the integration table, reference-count vector, LISP,
//! * [`sim`] — the out-of-order pipeline with DIVA verification,
//! * [`workloads`] — synthetic SPEC2000int-like benchmark programs.
//!
//! ## Quickstart
//!
//! ```
//! use rix::prelude::*;
//!
//! // A stack-heavy workload and two machines: baseline and full integration.
//! let program = rix::workloads::by_name("vortex").expect("known workload").build(7);
//! let base = SimConfig::baseline();
//! let full = SimConfig::default(); // +general +opcode +reverse
//!
//! // 40k retired instructions: below ~30k, cold-cache warm-up still
//! // dominates IPC and the speedup comparison is not yet meaningful.
//! let r0 = Simulator::new(&program, base).run(40_000);
//! let r1 = Simulator::new(&program, full).run(40_000);
//! assert!(r1.stats.integration.rate() > 0.05, "integration fires");
//! assert!(r1.ipc() > r0.ipc(), "integration speeds the machine up");
//! ```

pub use rix_frontend as frontend;
pub use rix_integration as integration;
pub use rix_isa as isa;
pub use rix_mem as mem;
pub use rix_sim as sim;
pub use rix_workloads as workloads;

/// Commonly used items, re-exported for examples and tests.
pub mod prelude {
    pub use rix_integration::{IndexScheme, IntegrationConfig, ReverseScope, Suppression};
    pub use rix_isa::{reg, Asm, Instr, Opcode, Program};
    pub use rix_sim::{RunResult, SimConfig, Simulator};
    pub use rix_workloads::{all_benchmarks, by_name, Benchmark};
}
