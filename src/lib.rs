//! # rix — register integration, three ways
//!
//! `rix` reproduces *"Three Extensions to Register Integration"* (Amir
//! Roth, Anne Bracy, Vlad Petric; U. Penn MS-CIS-02-22, 2002): a
//! cycle-level 4-way superscalar out-of-order simulator whose register
//! renamer implements **register integration** — instruction reuse via
//! physical register sharing — together with the paper's three extensions:
//!
//! 1. **general reuse** through physical-register reference counting,
//! 2. **opcode/immediate/call-depth integration-table indexing**, and
//! 3. **reverse integration**, which turns stack saves/restores into free
//!    speculative memory bypassing.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`isa`] — the RIX instruction set and assembler,
//! * [`mem`] — the cache/TLB/bus memory hierarchy,
//! * [`frontend`] — branch prediction and fetch,
//! * [`integration`] — the integration table, reference-count vector, LISP,
//! * [`sim`] — the out-of-order pipeline with DIVA verification, driven
//!   through resumable sessions (`step` / `run_until` / `reset_stats`),
//! * [`workloads`] — synthetic SPEC2000int-like benchmark programs,
//! * [`bench`] — the experiment layer: the thread-parallel [`Sweep`]
//!   grid runner and the figure binaries' shared [`Harness`].
//!
//! [`Sweep`]: bench::Sweep
//! [`Harness`]: bench::Harness
//!
//! ## Quickstart
//!
//! ```
//! use rix::prelude::*;
//!
//! // A stack-heavy workload and two machines: baseline and full
//! // integration (+general +opcode +reverse). Lookup ignores case.
//! let program = by_name("VORTEX").expect("known workload").build(7);
//!
//! // Resumable sessions make warm-up explicit: run 30k instructions to
//! // fill the caches and predictors, zero the counters while keeping
//! // the machine state, then measure 20k instructions hot.
//! let measure = |cfg: SimConfig| {
//!     let mut sim = Simulator::new(&program, cfg);
//!     sim.run_until(&StopWhen::RetiredAtLeast(30_000));
//!     sim.reset_stats();
//!     sim.run_until(&StopWhen::RetiredAtLeast(20_000));
//!     sim.into_result()
//! };
//! let r0 = measure(SimConfig::baseline());
//! let r1 = measure(SimConfig::default());
//! assert!(r1.stats.integration.rate() > 0.05, "integration fires");
//! assert!(r1.ipc() > r0.ipc(), "integration speeds the machine up");
//! ```
//!
//! The same comparison over a (benchmark × config) grid is a [`Sweep`]
//! (`.threads(n)` fans it out over a worker pool; trial order does not
//! depend on the thread count):
//!
//! ```
//! use rix::prelude::*;
//!
//! let trials = Sweep::new()
//!     .benchmarks([by_name("vortex").unwrap()])
//!     .config("base", SimConfig::baseline())
//!     .config("integration", SimConfig::default())
//!     .instructions(20_000)
//!     .warmup(30_000)
//!     .threads(2)
//!     .run();
//! assert!(trials[1].result.ipc() > trials[0].result.ipc());
//! ```
//!
//! **Migrating from the pre-session API:** `Simulator::run(n)` still
//! works (it is now a wrapper over `run_until` with a retired-count /
//! cycle-safety stop condition), but hand-rolled loops over benchmarks
//! and configs are better expressed as a `Sweep`, which adds warm-up
//! and threading for free.

pub use rix_bench as bench;
pub use rix_frontend as frontend;
pub use rix_integration as integration;
pub use rix_isa as isa;
pub use rix_mem as mem;
pub use rix_sim as sim;
pub use rix_workloads as workloads;

/// Commonly used items, re-exported for examples and tests.
pub mod prelude {
    pub use rix_bench::{trials_json, Harness, Sweep, Trial};
    pub use rix_integration::{IndexScheme, IntegrationConfig, ReverseScope, Suppression};
    pub use rix_isa::{reg, Asm, Instr, Opcode, Program};
    pub use rix_sim::{RunResult, SimConfig, Simulator, StopReason, StopWhen};
    pub use rix_workloads::{all_benchmarks, by_name, lookup, Benchmark};
}
