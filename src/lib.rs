//! # rix — register integration, three ways
//!
//! `rix` reproduces *"Three Extensions to Register Integration"* (Amir
//! Roth, Anne Bracy, Vlad Petric; U. Penn MS-CIS-02-22, 2002): a
//! cycle-level 4-way superscalar out-of-order simulator whose register
//! renamer implements **register integration** — instruction reuse via
//! physical register sharing — together with the paper's three extensions:
//!
//! 1. **general reuse** through physical-register reference counting,
//! 2. **opcode/immediate/call-depth integration-table indexing**, and
//! 3. **reverse integration**, which turns stack saves/restores into free
//!    speculative memory bypassing.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`isa`] — the RIX instruction set and assembler,
//! * [`mem`] — the cache/TLB/bus memory hierarchy,
//! * [`frontend`] — branch prediction and fetch,
//! * [`integration`] — the integration table, reference-count vector, LISP,
//! * [`analysis`] — static analysis over programs: CFG, dataflow, the
//!   `RIXnnn` lints, and the integration-opportunity oracle,
//! * [`sim`] — the out-of-order pipeline with DIVA verification, driven
//!   through resumable sessions (`step` / `run_until` / `reset_stats`),
//! * [`workloads`] — synthetic SPEC2000int-like benchmark programs,
//! * [`dispatch`] — multi-process experiment dispatch: the
//!   coordinator/worker pool and the content-addressed trial cache,
//! * [`bench`] — the experiment layer: the thread-parallel [`Sweep`]
//!   grid runner and the figure binaries' shared [`Harness`].
//!
//! [`Sweep`]: bench::Sweep
//! [`Harness`]: bench::Harness
//!
//! ## Quickstart
//!
//! ```
//! use rix::prelude::*;
//!
//! // A stack-heavy workload and two machines: baseline and full
//! // integration (+general +opcode +reverse). Lookup ignores case.
//! let program = by_name("VORTEX").expect("known workload").build(7);
//!
//! // Resumable sessions make warm-up explicit: run 30k instructions to
//! // fill the caches and predictors, zero the counters while keeping
//! // the machine state, then measure 20k instructions hot.
//! let measure = |cfg: SimConfig| {
//!     let mut sim = Simulator::new(&program, cfg);
//!     sim.run_until(&StopWhen::RetiredAtLeast(30_000));
//!     sim.reset_stats();
//!     sim.run_until(&StopWhen::RetiredAtLeast(20_000));
//!     sim.into_result()
//! };
//! let r0 = measure(SimConfig::baseline());
//! let r1 = measure(SimConfig::default());
//! assert!(r1.stats.integration.rate() > 0.05, "integration fires");
//! assert!(r1.ipc() > r0.ipc(), "integration speeds the machine up");
//! ```
//!
//! The same comparison over a (benchmark × config) grid is a [`Sweep`]
//! (`.threads(n)` fans it out over a worker pool; trial order does not
//! depend on the thread count):
//!
//! ```
//! use rix::prelude::*;
//!
//! let trials = Sweep::new()
//!     .benchmarks([by_name("vortex").unwrap()])
//!     .config("base", SimConfig::baseline())
//!     .config("integration", SimConfig::default())
//!     .instructions(20_000)
//!     .warmup(30_000)
//!     .threads(2)
//!     .run();
//! assert!(trials[1].result.ipc() > trials[0].result.ipc());
//! ```
//!
//! **Migrating from the pre-session API:** `Simulator::run(n)` still
//! works (it is now a wrapper over `run_until` with a retired-count /
//! cycle-safety stop condition), but hand-rolled loops over benchmarks
//! and configs are better expressed as a `Sweep`, which adds warm-up
//! and threading for free.
//!
//! ## Fast-forward warm-up, checkpoint, fork a sweep
//!
//! Architectural state is one shared type, [`ArchState`] — PC, logical
//! registers, memory image, retired position — that every engine speaks:
//! the reference interpreter ([`Interp`]) is a thin stepper over one,
//! the detailed simulator retires into one and can boot from one
//! mid-program, and sessions serialise one to disk inside a
//! [`Checkpoint`].
//!
//! [`ArchState`]: isa::ArchState
//! [`Interp`]: isa::interp::Interp
//! [`Checkpoint`]: sim::Checkpoint
//!
//! ```
//! use rix::prelude::*;
//!
//! let program = by_name("gcc").expect("known workload").build(7);
//!
//! // 1. Fast-forward the warm-up at interpreter speed (no
//! //    microarchitecture simulated at all) ...
//! let warm = Interp::new(&program, SimConfig::default().stack_top).fast_forward(30_000);
//! assert_eq!(warm.retired, 30_000);
//!
//! // 2. ... fork every config arm from the shared snapshot ...
//! let mut base = Simulator::from_arch_state(&program, SimConfig::baseline(), &warm);
//! let mut full = Simulator::from_arch_state(&program, SimConfig::default(), &warm);
//! base.run_until(&StopWhen::RetiredAtLeast(10_000));
//! full.run_until(&StopWhen::RetiredAtLeast(10_000));
//!
//! // 3. ... and both arms retire into exactly the architectural states
//! //    the interpreter visits (equality covers memory, not just
//! //    registers).
//! let pos = base.arch_state().retired;
//! let reference = Interp::new(&program, SimConfig::default().stack_top).fast_forward(pos);
//! assert_eq!(base.arch_state(), reference);
//!
//! // 4. Checkpoint a session mid-run: save, reload, resume — the disk
//! //    round trip is byte-identical to never having stopped.
//! let ck = full.checkpoint();
//! let restored = Checkpoint::from_json(&ck.to_json()).expect("lossless");
//! let mut resumed = Simulator::from_checkpoint(&program, SimConfig::default(), &restored);
//! // (the budget counts the ~10k instructions already measured, so aim
//! // past them to actually simulate on both sides)
//! assert_eq!(full.run_budget(15_000).to_json(), resumed.run_budget(15_000).to_json());
//! ```
//!
//! The sweep layer packages step 1–2 as
//! [`Sweep::warmup_mode`]`(`[`WarmupMode::Functional`]`)`: one
//! interpreter fast-forward per (benchmark, seed), shared by every
//! config arm, instead of one detailed warm-up per cell.
//!
//! [`Sweep::warmup_mode`]: bench::Sweep::warmup_mode
//! [`WarmupMode::Functional`]: bench::WarmupMode::Functional
//!
//! **Warm-up migration note:** `Sweep`'s default is unchanged —
//! [`WarmupMode::Detailed`](bench::WarmupMode::Detailed) runs the
//! warm-up on the detailed machine per cell, and warm-up-free sweeps
//! stay byte-identical to earlier releases. Functional warm-up is
//! **opt-in** because it changes methodology: the measured interval
//! starts with cold caches/predictors/integration table, so absolute
//! numbers shift (relative comparisons across arms share identical
//! starting conditions, and the sweep's wall clock drops by roughly the
//! per-arm warm-up cost).
//!
//! ## Define a ParamSpace, run it, seed it from a checkpoint
//!
//! Experiments are first-class **data**. Every configuration type
//! round-trips exactly through JSON ([`SimConfig::to_json`] /
//! [`SimConfig::from_json`], unknown keys rejected, omitted fields
//! defaulted), every design point of the paper is a named preset
//! ([`SimConfig::preset`]`("base")`, `"iw3_rs20"`, `"plus_reverse"`,
//! …), and a grid of configurations is a [`ParamSpace`]: named axes
//! over config fields, composed by cross product or zipped, each point
//! yielding a labelled arm.
//!
//! [`SimConfig::to_json`]: sim::SimConfig::to_json
//! [`SimConfig::from_json`]: sim::SimConfig::from_json
//! [`SimConfig::preset`]: sim::SimConfig::preset
//! [`ParamSpace`]: bench::ParamSpace
//!
//! ```
//! use rix::prelude::*;
//!
//! // 1. Define: Figure 6's IT-size axis over the headline machine,
//! //    the register file zipped to grow with the 4K point.
//! let space = ParamSpace::point("base", SimConfig::preset("base").unwrap()).chain(
//!     ParamSpace::base(SimConfig::preset("plus_reverse").unwrap())
//!         .cross(&Axis::new("it_entries", [256u64, 1024, 4096])
//!             .with_labels(["256", "1K", "4K"]))
//!         .zip(&Axis::new("it_ways", [256u64, 1024, 4096]))
//!         .zip(&Axis::new("num_pregs", [1024u64, 1024, 4096])),
//! );
//!
//! // 2. Run it: the space's arms are the sweep's grid columns.
//! let trials = Sweep::new()
//!     .benchmarks([by_name("vortex").unwrap()])
//!     .space(space)
//!     .instructions(2_000)
//!     .threads(2)
//!     .run();
//! let labels: Vec<&str> = trials.iter().map(|t| t.config_label.as_str()).collect();
//! assert_eq!(labels, ["base", "256", "1K", "4K"]);
//!
//! // 3. Seed a sweep from a saved checkpoint: save one snapshot per
//! //    (benchmark, seed) where the sweep will look for it, then every
//! //    config arm forks from the snapshot instead of warming up.
//! let dir = std::env::temp_dir().join("rix-doc-ckpts");
//! std::fs::create_dir_all(&dir).unwrap();
//! let program = by_name("vortex").unwrap().build(7);
//! let mut warm = Simulator::new(&program, SimConfig::default());
//! warm.run_until(&StopWhen::RetiredAtLeast(5_000));
//! let dir = dir.to_str().unwrap().to_string();
//! warm.checkpoint().save(checkpoint_path(&dir, "vortex", 7)).unwrap();
//!
//! let seeded = Sweep::new()
//!     .benchmarks([by_name("vortex").unwrap()])
//!     .space(ParamSpace::presets([("base", "base"), ("integration", "plus_reverse")]))
//!     .instructions(2_000)
//!     .warmup_mode(WarmupMode::Checkpoint { dir })
//!     .run();
//! assert!(seeded.iter().all(|t| t.result.stats.retired >= 2_000));
//! ```
//!
//! The same experiment is expressible as a **spec file** (schema
//! `rix-exp/1`, see [`ExperimentSpec`](bench::ExperimentSpec)): the five
//! figure binaries are committed specs under `specs/` driving one
//! engine, and `exp run spec.json` (with `--dry-run`, `--list-arms`,
//! `--json`, `--output`) runs any spec from the command line, embedding
//! the spec's fingerprint in its results.
//!
//! **Migration note (`Sweep::configs`):** hand-built
//! `(label, SimConfig)` lists still work — `Sweep::config`/`configs`
//! are unchanged — but grids over config *fields* are better said as a
//! `ParamSpace` (axes compose, labels derive, zip expresses tied
//! fields), and experiments worth committing are better said as spec
//! files: data that `exp` can run, validate and fingerprint.
//!
//! ## Distributed experiments: worker processes and the trial cache
//!
//! Big grids shard across worker **processes** (crash isolation — a
//! worker taken down by a bug or the OOM killer costs a retry, not the
//! run) and re-runs reuse cached trials. On the command line every
//! figure binary and `exp` take the same two flags:
//!
//! ```text
//! exp run specs/fig4.json --workers 4 --cache ~/.rix-cache --json
//! # edit one arm of the spec, re-run: only that arm's cells simulate
//! exp run specs/fig4.json --workers 4 --cache ~/.rix-cache --json
//! ```
//!
//! The coordinator re-execs its own binary as workers, streams cell
//! assignments over stdio (schema `rix-dispatch/1`), detects dead or
//! hung workers and retries their cells on survivors — and the merged
//! trials are **byte-identical** to a single-process run for any worker
//! count, fault history, or cache state, so `--workers`/`--cache` are
//! pure execution policy, never methodology. The same machinery is
//! callable from code ([`DispatchOptions::workers`]` = 0` executes
//! in-process, still through the cache):
//!
//! ```
//! use rix::prelude::*;
//!
//! let dir = std::env::temp_dir().join("rix-doc-trial-cache");
//! # let _ = std::fs::remove_dir_all(&dir);
//! let sweep = Sweep::new()
//!     .benchmarks([by_name("vortex").unwrap()])
//!     .config("base", SimConfig::baseline())
//!     .config("integration", SimConfig::default())
//!     .instructions(1_500);
//! let opts = DispatchOptions {
//!     cache: Some(dir.to_str().unwrap().to_string()),
//!     ..DispatchOptions::default()
//! };
//!
//! let (cold, first) = sweep.run_distributed(&opts).unwrap();
//! assert_eq!((first.cache_hits, first.simulated), (0, 2));
//!
//! // An identical re-run simulates nothing and reproduces every trial.
//! let (warm, again) = sweep.run_distributed(&opts).unwrap();
//! assert_eq!((again.cache_hits, again.simulated), (2, 0));
//! assert_eq!(cold[0].to_json(), warm[0].to_json());
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```
//!
//! Cache entries are addressed by a 128-bit content hash of everything
//! that determines a cell's result (benchmark, seed, the arm's full
//! canonical config, budgets, warm-up policy — including the checkpoint
//! *file content* under checkpoint warm-up) and nothing that doesn't
//! (thread/worker counts, paths, spec names), so invalidation is exact
//! and caches are shareable across specs. Writes are atomic and corrupt
//! entries read as misses. Under [`WarmupMode::Checkpoint`] the workers
//! load the same `rix-ckpt/1` snapshots the in-process path does, and
//! `exp run --dry-run` verifies the snapshot files exist before a run
//! is scheduled.
//!
//! [`DispatchOptions::workers`]: bench::DispatchOptions
//!
//! ## Lint a generated workload, then run it
//!
//! Every simulated data point starts life as a generated program, and a
//! generator bug — a read-before-write, an unreachable block, a missing
//! `halt` — silently becomes a bogus result. The [`analysis`] layer
//! vets a program *before* the simulator burns cycles on it, and its
//! static integration-opportunity oracle bounds the integration-table
//! hits any run of that program can produce (the `lint` binary wraps
//! the same calls for the command line, and `exp --dry-run` lints every
//! benchmark a spec references):
//!
//! ```
//! use rix::prelude::*;
//!
//! let program = by_name("vortex").expect("known workload").build(7);
//!
//! // 1. Lint: the shipped workloads are clean. A finding carries a
//! //    stable code, the PC, and a rendered message.
//! let findings = lint_program(&program);
//! assert!(findings.is_empty(), "{findings:?}");
//!
//! // 2. The static oracle: most static instructions are integration
//! //    eligible, and some are reverse-integration pairs (§2.4 saves
//! //    paired with restores).
//! let opp = analyze_program(&program);
//! assert!(opp.opportunity_fraction() > 0.5);
//! assert!(opp.reverse_pairs > 0);
//!
//! // 3. Run it: the dynamic IT hit count is below the oracle's bound —
//! //    a machine-checked link between the static and dynamic views.
//! let r = Simulator::new(&program, SimConfig::default()).run(20_000);
//! let hits = r.stats.integration.integrations();
//! assert!(hits > 0);
//! assert!(hits <= opp.hit_bound(r.stats.retired));
//! ```

pub use rix_analysis as analysis;
pub use rix_bench as bench;
pub use rix_dispatch as dispatch;
pub use rix_frontend as frontend;
pub use rix_integration as integration;
pub use rix_isa as isa;
pub use rix_mem as mem;
pub use rix_sim as sim;
pub use rix_workloads as workloads;

/// Commonly used items, re-exported for examples and tests.
///
/// Two stop-reason types coexist here, one per engine:
/// [`StopReason`](rix_sim::StopReason) is why a **cycle-level session**
/// returned (halt / retired threshold / cycle threshold / deadlock),
/// while [`InterpStopReason`](rix_isa::interp::StopReason) is why the
/// **functional interpreter** stopped (halt / step limit / fell off the
/// program). The interpreter's type is re-exported under the `Interp`
/// prefix so the two never shadow each other.
pub mod prelude {
    pub use rix_analysis::{
        analyze_program, lint_program, Cfg, Dataflow, Diagnostic, LintCode, Opportunity,
    };
    pub use rix_bench::{
        checkpoint_path, trials_json, Axis, AxisValue, DispatchOptions, DispatchReport,
        ExperimentSpec, Harness, ParamSpace, Sweep, Trial, WarmupMode,
    };
    pub use rix_dispatch::ResultCache;
    pub use rix_integration::{IndexScheme, IntegrationConfig, ReverseScope, Suppression};
    pub use rix_isa::interp::{Interp, StopReason as InterpStopReason};
    pub use rix_isa::{reg, ArchState, Asm, Instr, MemImage, Opcode, Program};
    pub use rix_sim::{Checkpoint, RunResult, SimConfig, Simulator, StopReason, StopWhen};
    pub use rix_workloads::{all_benchmarks, by_name, lookup, Benchmark};
}
